""":class:`Database` — the one session object every front-end plugs into.

A ``Database`` owns, for one structure:

* the **pipeline cache** (:class:`repro.engine.cache.PipelineCache`),
  keyed by ``(structure fingerprint, normalized formula, order, eps)``;
* the shared **colored-graph templates** (cluster enumeration depends
  only on ``(arity, link radius)``, so equal-shape queries clone one
  template instead of re-enumerating);
* a lazily-started, crash-restarting **worker pool**
  (:class:`repro.engine.pool.WorkerPool`) that serial workloads never
  pay for;
* the **dynamic maintainers**: every cached plan the local-recomputation
  machinery supports (:class:`repro.core.dynamic.PipelineMaintainer`) is
  kept fresh *in place* through :meth:`insert_fact` /
  :meth:`remove_fact` / :meth:`transaction` / :meth:`apply` — a batch
  commit pays ONE maintenance pass per plan for the whole changeset —
  while ineligible plans get targeted invalidation — the session never
  throws away the whole cache just because one fact changed;
* the **version pins**: :meth:`snapshot` (and every
  :class:`~repro.session.answers.Answers` handle) pins the version it
  was planned against; a commit overlapping a live pin forks the
  structure copy-on-write and freezes the old head, so pinned readers
  keep enumerating byte-identically instead of going stale.

``db.query("...")`` returns a :class:`repro.session.Query` plan object
with ``.count() / .test(tuple) / .answers() / .explain()``; execution
strategy is chosen per plan by the cost model and overridable with
``backend=`` (see :mod:`repro.session.backends`).
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Dict, Hashable, Optional, Sequence, Tuple, Union

from repro.core.colored_graph import ColoredGraph, build_colored_graph
from repro.core.dynamic import (
    PipelineMaintainer,
    apply_ops,
    net_effects,
    supports_maintenance,
)
from repro.core.pipeline import Pipeline
from repro.engine.cache import CacheKey, PipelineCache, cache_key, coerce_order
from repro.engine.pool import WorkerPool
from repro.errors import (
    DurabilityError,
    EngineError,
    MaintenanceWarning,
    RetentionLimitError,
    SignatureError,
)
from repro.fo import coerce_formula
from repro.fo.syntax import Formula, Var
from repro.qlang import compile_select, is_select, parse_select
from repro.session.query import Query
from repro.session.snapshot import Snapshot
from repro.session.transaction import (
    Changeset,
    CommitResult,
    Transaction,
    coerce_op,
)
from repro.storage.wal import (
    DEFAULT_SEGMENT_BYTES,
    CheckpointResult,
    DurableStore,
    WalRecord,
)
from repro.structures.serialize import fingerprint
from repro.structures.structure import Structure
from repro.util.faults import crash_point

Element = Hashable

_WRITE_GUARD_MESSAGE = (
    "this structure is owned by a Database session; direct "
    "add_fact/remove_fact would desynchronize its pinned readers and "
    "maintained plans — mutate through the session instead: "
    "db.transaction() / db.apply() / db.insert_fact() / db.remove_fact()"
)


class _VersionPin:
    """One revocable hold on a structure version's derived state.

    Held by :class:`~repro.session.snapshot.Snapshot` objects and
    :class:`~repro.session.answers.Answers` handles.  While any pin on
    the current fingerprint is live, commits take the copy-on-write fork
    path (the pinned version stays frozen and byte-identical); releasing
    the last pin on a superseded version purges its cached pipelines.
    ``release()`` is idempotent and safe from any thread (including GC
    finalizers).
    """

    __slots__ = ("_db", "tag", "released")

    def __init__(self, db, tag: str):
        self._db = db
        self.tag = tag
        self.released = False

    def release(self) -> None:
        self._db._release(self)


class _ReadWriteLock:
    """Many concurrent readers XOR one writer, writer-preferring.

    Pipeline builds hold the read side (they overlap freely — that is
    the whole point of the per-key build locks), while
    ``insert_fact``/``remove_fact`` hold the write side, so a mutation
    can never tear a build's structure reads or let a pre-update
    pipeline land in the post-update cache.  Writer preference keeps a
    steady query stream from starving updates.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class Database:
    """One structure, one cache, one pool — every query mode in one place.

    Quick start::

        from repro.session import Database

        with Database(structure, workers=4) as db:
            q = db.query("B(x) & R(y) & ~E(x,y)")
            q.count()                     # Theorem 2.5
            q.test((0, 2))                # Theorem 2.6
            for answer in q.answers():    # Theorem 2.7, constant delay
                ...
            with db.transaction() as tx:  # atomic batch: one
                tx.insert_fact("B", 3)    # maintenance pass per plan
                tx.remove_fact("E", 0, 2)
            q.count()                     # reflects the commit
            with db.snapshot() as snap:   # pinned reads, never stale
                snap.query("B(x)").count()
    """

    def __init__(
        self,
        structure: Structure,
        eps: float = 0.5,
        workers: Optional[int] = None,
        skip_mode: str = "lazy",
        cache_capacity: int = 64,
        share_graphs: bool = True,
        maintain: bool = True,
        guard_writes: bool = True,
        retention_budget: int = 64,
    ):
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        if retention_budget < 1:
            raise EngineError(
                f"retention_budget must be >= 1, got {retention_budget}"
            )
        self.structure = structure
        self.eps = eps
        self.workers = workers
        self.skip_mode = skip_mode
        self.share_graphs = share_graphs
        self.maintain = maintain
        self.pool = WorkerPool(workers)
        self.cache = PipelineCache(cache_capacity)
        # Keyed by (structure fingerprint, arity, link_radius).
        self._graph_templates: Dict[Tuple[str, int, int], ColoredGraph] = {}
        self._maintainers: Dict[CacheKey, PipelineMaintainer] = {}
        self._fingerprint = fingerprint(structure)
        self._version = structure.version
        # Cache keys use a *generation-tagged* fingerprint.  The
        # generation (carried by the structure, bumped on every
        # copy-on-write fork, persisted by the serializer) makes entries
        # built against a superseded frozen structure unreachable from a
        # later head whose *content* fingerprint happens to return to
        # the same value (remove-then-reinsert across a fork): the
        # frozen pipeline would serve — and worse, be maintained
        # against — the wrong structure object.
        self._cache_tag = self._tag(self._fingerprint)
        self._closed = False
        # Durability (Database.open / checkpoint): the snapshot + WAL
        # store, None for purely in-memory sessions.  ``_store_broken``
        # latches when a WAL append fails — the in-memory state is then
        # ahead of disk, and further commits are refused until a
        # checkpoint re-establishes a consistent on-disk base.
        self._store: Optional[DurableStore] = None
        self._store_broken = False
        # Incremental checkpoints: (normalized, order, eps) triples whose
        # plan state changed since the last checkpoint — new builds,
        # refreshes that performed graph surgery, and every plan cloned
        # by a fork.  checkpoint() spills only these; clean plans reuse
        # their previous spill blob.
        self._dirty_plans: set = set()
        # Fork-retention budget: how many superseded versions may stay
        # pinned (by snapshots / answer handles) at once before a commit
        # refuses to fork yet again.
        self._retention_budget = retention_budget
        # Write guard: refuse direct structure.add_fact/remove_fact for
        # session-owned structures (GuardedStructureError names the
        # session API); legacy facades opt out to keep the historical
        # mutate-then-StaleResultError contract.
        self._guard_installed = False
        if guard_writes and not structure.frozen and structure._write_guard is None:
            structure._write_guard = _WRITE_GUARD_MESSAGE
            self._guard_installed = True
        # Concurrency: the session is thread-safe.  Shared mutable state
        # (cache, templates, maintainers, fingerprint) hides behind one
        # short-critical-section RLock; the *expensive* pipeline builds
        # run outside it under per-cache-key locks, so two cold queries
        # with distinct keys build concurrently while two racing calls
        # for the same key build once (the loser blocks, then cache-hits).
        self._state_lock = threading.RLock()
        # Builds read the structure concurrently; session updates write.
        self._structure_lock = _ReadWriteLock()
        self._locks_guard = threading.Lock()
        # key -> [lock, lease count]; entries live only while a build (or
        # a waiter) holds a lease, so the registry is bounded by the
        # number of in-flight prepares.
        self._build_locks: Dict[CacheKey, list] = {}
        self._template_locks: Dict[Tuple[str, int, int], threading.Lock] = {}
        # fingerprint -> live pin count (snapshots + answers handles).
        # Guarded by _state_lock; a pinned current fingerprint routes
        # commits onto the copy-on-write fork path.
        self._pins: Dict[str, int] = {}

    # -- the public query surface --------------------------------------

    def query(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        backend=None,
        skip_mode: Optional[str] = None,
        workers: Optional[int] = None,
        budget=None,
        chunk_rows: Optional[int] = None,
        transport: Optional[str] = None,
    ) -> Query:
        """Preprocess (or cache-hit) ``query`` and return its plan object.

        ``backend`` forces an execution strategy (``"serial"`` /
        ``"thread"`` / ``"process"``, or any
        :class:`~repro.session.backends.ExecutionBackend`); the default
        ``"auto"`` lets the cost model decide per plan.  ``budget`` (a
        :class:`repro.fo.localize.LocalizationBudget`) bypasses the cache
        — budgets change pipeline shape and are not part of the cache
        key.  ``chunk_rows`` / ``transport`` override the process-mode
        answer transport (default: columnar codec, cost-model chunk
        size; ``transport="pickle"`` restores the legacy whole-list
        transfer).

        A string starting with the ``SELECT`` keyword is a qlang
        statement (``SELECT x, y WHERE <FO formula> ...``): it is
        parsed, compiled onto this session's engine, and returned as a
        :class:`repro.qlang.CompiledQuery` instead of a plain
        :class:`Query` (``order`` comes from the SELECT list there, so
        passing both is an error).
        """
        self._check_open()
        if isinstance(query, str) and is_select(query):
            if order is not None:
                raise EngineError(
                    "a qlang SELECT statement fixes its own column "
                    "order; drop the order= argument"
                )
            return compile_select(
                parse_select(query),
                self,
                backend=backend,
                skip_mode=skip_mode,
                workers=workers,
                budget=budget,
                chunk_rows=chunk_rows,
                transport=transport,
            )
        return Query(
            self,
            coerce_formula(query),
            order=coerce_order(order),
            backend=backend,
            skip_mode=skip_mode,
            workers=workers,
            budget=budget,
            chunk_rows=chunk_rows,
            transport=transport,
        )

    def count(self, query, order=None, **options) -> int:
        """Convenience: ``db.query(...).count()``."""
        return self.query(query, order=order, **options).count()

    def test(self, query, candidate: Sequence[Element], **options) -> bool:
        """Convenience: ``db.query(...).test(candidate)``."""
        return self.query(query, **options).test(candidate)

    def _tag(self, content_fingerprint: str) -> str:
        """The cache/pin key for one (fork generation, content) state."""
        return f"{self.structure.generation}:{content_fingerprint}"

    # -- snapshot-isolated reads ---------------------------------------

    def snapshot(self) -> Snapshot:
        """An immutable view pinned at the current fingerprint/version.

        Reads through the snapshot never block writers and never raise
        :class:`~repro.errors.StaleResultError`: a commit that overlaps a
        live snapshot moves the database head to a copy-on-write fork and
        freezes the old structure, so the snapshot keeps serving its
        version byte-identically.  Close the snapshot (``with`` / GC) to
        release the pin; the last release on a superseded version purges
        its retained cache entries.
        """
        self._check_open()
        with self._state_lock:
            self._refresh_locked()
            pin = self._retain(self._cache_tag)
            return Snapshot(
                self,
                self.structure,
                self._fingerprint,
                self.structure.version,
                pin,
                tag=self._cache_tag,
            )

    @property
    def version(self) -> int:
        """The head structure's monotonic version (continues across forks)."""
        return self.structure.version

    @property
    def path(self) -> Optional[str]:
        """The durable store directory, or ``None`` for in-memory
        sessions.  This is the path a shared-filesystem follower tails
        (:class:`repro.replication.DirectorySource`)."""
        return self._store.path if self._store is not None else None

    def _head_version(self) -> int:
        """Callable form of :attr:`version` for handle staleness probes."""
        return self.structure.version

    # -- version pinning -----------------------------------------------

    def _retain(self, tag: str) -> _VersionPin:
        """Register one pin on a version tag (caller may hold _state_lock)."""
        with self._state_lock:
            self._pins[tag] = self._pins.get(tag, 0) + 1
            self.cache.retain(tag)
            return _VersionPin(self, tag)

    def _release(self, pin: _VersionPin) -> None:
        with self._state_lock:
            if pin.released:
                return
            pin.released = True
            tag = pin.tag
            self.cache.release(tag)
            count = self._pins.get(tag, 0) - 1
            if count > 0:
                self._pins[tag] = count
                return
            self._pins.pop(tag, None)
            if tag != self._cache_tag:
                # The head moved past this version and nothing reads it
                # anymore: its pipelines are unreachable — purge them.
                self.cache.invalidate(tag)

    def _pin_current(self, expected_version: int) -> Optional[_VersionPin]:
        """Pin the head iff it is still at ``expected_version``.

        Atomic with respect to commits (both sides hold ``_state_lock``),
        so an :class:`Answers` handle that wins a pin is guaranteed its
        pipeline will never be refreshed in place underneath it.
        """
        with self._state_lock:
            self._refresh_locked()
            if self.structure.version != expected_version:
                return None
            return self._retain(self._cache_tag)

    def _pinned_locked(self) -> bool:
        return self._pins.get(self._cache_tag, 0) > 0

    # -- dynamic updates -----------------------------------------------

    def insert_fact(self, relation: str, *elements: Element) -> bool:
        """Insert one fact (an atomic one-op transaction).

        Returns ``True`` when the structure changed (the fact was new).
        Plans the local-recomputation maintainer supports are updated in
        ``O(d^h(|q|))`` — independent of ``n`` — and stay cache-hits;
        only the ineligible plans are invalidated (targeted, not
        whole-cache).  Batch several updates with :meth:`transaction` /
        :meth:`apply` to pay the maintenance pass once for all of them.
        """
        return self._commit([(True, relation, tuple(elements))]).changed

    def remove_fact(self, relation: str, *elements: Element) -> bool:
        """Delete a fact; same maintenance contract as :meth:`insert_fact`."""
        return self._commit([(False, relation, tuple(elements))]).changed

    def transaction(self) -> Transaction:
        """A buffered write transaction committing atomically on exit::

            with db.transaction() as tx:
                tx.insert_fact("E", 0, 1)
                tx.remove_fact("B", 3)
                tx.insert_many("B", [(4,), (5,)])

        The whole changeset commits with one structure-lock acquisition,
        one rolling-fingerprint roll, one maintenance pass per cached
        plan, and one cache re-key; an exception inside the block (or a
        commit-time failure) leaves structure, cache, and fingerprint
        untouched.
        """
        self._check_open()
        return Transaction(self)

    def apply(self, changes) -> CommitResult:
        """Atomically apply a changeset (see :meth:`transaction`).

        ``changes`` is a :class:`~repro.session.transaction.Changeset`
        or any iterable of ``(op, relation, elements)`` triples where
        ``op`` is a bool (insert?) or ``"insert"``/``"remove"``.  Replay
        semantics match calling ``insert_fact``/``remove_fact`` in
        order; no-ops and cancelling pairs are netted out before any
        maintenance runs.
        """
        if isinstance(changes, Changeset):
            ops = list(changes.ops)
        else:
            ops = [coerce_op(op) for op in changes]
        return self._commit(ops)

    def _commit(self, ops, log: bool = True) -> CommitResult:
        """One atomic commit: validate, net, apply, maintain, re-key.

        With a durable store attached, the effective changeset is
        appended to the write-ahead log — flushed and fsync'd — before
        this method returns: a commit is durable once acknowledged.
        ``log=False`` is the WAL-replay mode of :meth:`open` (replayed
        commits are already on disk).
        """
        self._check_open()
        self._structure_lock.acquire_write()
        try:
            with self._state_lock:
                if log and self._store is not None and self._store_broken:
                    raise DurabilityError(
                        "a write-ahead log append failed earlier; the "
                        "in-memory state is ahead of disk — call "
                        "checkpoint() to re-establish durability before "
                        "committing again"
                    )
                self._refresh_locked()
                structure = self.structure
                # Validate everything before touching anything: an
                # atomic commit must fail *entirely* up front.  Domain
                # membership only matters for inserts — removing a fact
                # over unknown elements is a no-op, exactly like the
                # pre-transaction remove_fact contract.
                for insert, relation, elements in ops:
                    symbol = structure.signature.symbol(relation)
                    if len(elements) != symbol.arity:
                        raise SignatureError(
                            f"{relation} has arity {symbol.arity}, got "
                            f"{len(elements)} arguments"
                        )
                    if insert:
                        for element in elements:
                            if element not in structure:
                                raise ValueError(
                                    f"element {element!r} is not in the domain"
                                )
                effective = net_effects(structure, ops)
                version_before = structure.version
                fingerprint_before = self._fingerprint
                if not effective:
                    return CommitResult(
                        ops_submitted=len(ops),
                        ops_effective=0,
                        version_before=version_before,
                        version_after=version_before,
                        fingerprint_before=fingerprint_before,
                        fingerprint_after=fingerprint_before,
                    )
                if self._pinned_locked():
                    maintained = self._commit_forked_locked(effective)
                    forked = True
                else:
                    # Suspend the write guard for the session's own
                    # mutation of the head (restored even on revert).
                    guard = structure._write_guard
                    structure._write_guard = None
                    try:
                        maintained = self._commit_in_place_locked(effective)
                    finally:
                        structure._write_guard = guard
                    forked = False
                result = CommitResult(
                    ops_submitted=len(ops),
                    ops_effective=len(effective),
                    version_before=version_before,
                    version_after=self.structure.version,
                    fingerprint_before=fingerprint_before,
                    fingerprint_after=self._fingerprint,
                    maintained_plans=maintained,
                    forked=forked,
                )
                if log and self._store is not None:
                    self._append_wal(effective, result)
                return result
        finally:
            self._structure_lock.release_write()

    def _revert_ops_locked(self, applied) -> None:
        """Undo applied ops (reverse order); restore fingerprint tracking.

        The rolling fact accumulator makes the reverted fingerprint equal
        the pre-commit one by construction; re-sync ``_version`` so the
        next access does not mistake the revert for an external mutation.
        """
        for insert, relation, elements in reversed(applied):
            if insert:
                self.structure.remove_fact(relation, *elements)
            else:
                self.structure.add_fact(relation, *elements)
        self._version = self.structure.version

    def _commit_in_place_locked(self, effective) -> int:
        """The fast path: nothing pins the current version, so cached
        plans are maintained *in place* — one local-recomputation pass
        per maintained plan for the whole batch — and the cache re-keys
        to the new fingerprint."""
        self._prune_maintainers()
        touched = tuple(
            {element for _, _, elements in effective for element in elements}
        )
        # Phase 1: each maintainer's reach *before* the mutations (a
        # deleted edge used to provide connectivity).
        pre_regions = {
            key: maintainer.reach(touched)
            for key, maintainer in self._maintainers.items()
        }
        # Phase 2: apply the whole batch to the structure.
        applied = []
        try:
            for op in effective:
                insert, relation, elements = op
                if insert:
                    self.structure.add_fact(relation, *elements)
                else:
                    self.structure.remove_fact(relation, *elements)
                applied.append(op)
        except BaseException:
            self._revert_ops_locked(applied)
            raise
        # Phase 3: ONE local recomputation per maintained plan, over the
        # union of pre/post reach — sound because maintenance only
        # reconciles the initial and final structures.  This mirrors
        # PipelineMaintainer.apply_batch (the single-maintainer form);
        # keep the region computation in lockstep with it.
        try:
            for key, maintainer in self._maintainers.items():
                region = pre_regions[key] | maintainer.reach(touched)
                if maintainer.refresh(touched, region):
                    self._dirty_plans.add(key[1:])
        except BaseException:
            # A half-refreshed maintained plan cannot be trusted against
            # either version: revert the facts and drop exactly the
            # maintained entries (untouched cache entries stay valid).
            self._revert_ops_locked(applied)
            for key in self._maintainers:
                self.cache.discard(key)
            self._maintainers.clear()
            raise
        # Phase 4: one fingerprint roll + one cache re-key.  Maintained
        # plans move to the new fingerprint key (still cache-hits);
        # everything else for the old fingerprint is dropped; graph
        # templates are structure-derived, so they rebuild on demand.
        old_tag = self._cache_tag
        self._fingerprint = fingerprint(self.structure)
        self._cache_tag = self._tag(self._fingerprint)
        self._version = self.structure.version
        self._graph_templates.clear()
        with self._locks_guard:
            self._template_locks.clear()
        kept = self.cache.rekey(
            old_tag,
            self._cache_tag,
            keep=set(self._maintainers),
        )
        self._maintainers = {
            (self._cache_tag,) + key[1:]: maintainer
            for key, maintainer in self._maintainers.items()
        }
        assert kept == len(self._maintainers), "maintained plan lost its entry"
        return kept

    def _commit_forked_locked(self, effective) -> int:
        """The snapshot-isolated path: live pins hold the current
        version, so the commit forks the structure copy-on-write,
        freezes the old head (pinned readers keep it byte-identical
        forever), and moves the session to the fork.  The old version's
        cache entries stay retained until the last pin drops.

        Both heads stay **warm**: every maintained pipeline is cloned
        onto the fork (:meth:`Pipeline.fork` — copy-on-write-shared
        plans, private graph/branch state) and refreshed with the same
        one-pass batch maintenance the in-place path uses, so the new
        head's first query is a cache hit instead of a cold rebuild.
        The clone work happens strictly before the fork is published;
        any failure degrades to the old cold-rebuild behavior without
        touching the pinned head.
        """
        superseded = sum(1 for tag in self._pins if tag != self._cache_tag)
        if superseded >= self._retention_budget:
            raise RetentionLimitError(
                f"{superseded} superseded versions are still pinned by "
                f"snapshots or answer handles "
                f"(retention_budget={self._retention_budget}); consume, "
                "cancel, or close them — or raise the budget — before "
                "committing again"
            )
        self._prune_maintainers()
        old_structure = self.structure
        new_structure = old_structure.fork()
        touched = tuple(
            {element for _, _, elements in effective for element in elements}
        )
        # Phase 1 (pre-mutation): clone each maintained plan onto the
        # fork and record its reach while the fork still has the old
        # content — mirrors _commit_in_place_locked's pre-region pass.
        clones: Dict[CacheKey, PipelineMaintainer] = {}
        pre_regions: Dict[CacheKey, set] = {}
        try:
            for key, maintainer in self._maintainers.items():
                clone = PipelineMaintainer(maintainer.pipeline.fork(new_structure))
                pre_regions[key] = clone.reach(touched)
                clones[key] = clone
        except Exception as error:
            # Anything a user-defined element or formula atom does inside
            # fork/reach can surface here; warmth is best-effort, so warn
            # and degrade rather than fail the commit.
            warnings.warn(
                f"warm fork degraded to cold: cloning "
                f"{len(self._maintainers)} maintained plan(s) onto "
                f"version {new_structure.version} failed ({error!r}); "
                "the new head rebuilds them on demand",
                MaintenanceWarning,
                stacklevel=3,
            )
            clones, pre_regions = {}, {}
        apply_ops(new_structure, effective)
        # Point of no return — everything above touched only the fork.
        old_structure.freeze()
        self.structure = new_structure
        if self._guard_installed:
            new_structure._write_guard = _WRITE_GUARD_MESSAGE
        self._fingerprint = fingerprint(new_structure)
        # fork() bumped the structure's generation, so the tag names the
        # new lineage: even if a later commit returns the head to this
        # *content*, the frozen generation's entries stay unreachable.
        self._cache_tag = self._tag(self._fingerprint)
        self._version = new_structure.version
        self._graph_templates.clear()
        with self._locks_guard:
            self._template_locks.clear()
        # Phase 2 (post-mutation): one local-recomputation pass per
        # clone over the pre/post reach union.  The frozen head's
        # pipelines are untouched either way; a refresh failure only
        # costs warmth (the new head rebuilds that plan on demand).
        maintained: Dict[CacheKey, PipelineMaintainer] = {}
        if clones:
            try:
                for key, clone in clones.items():
                    region = pre_regions[key] | clone.reach(touched)
                    clone.refresh(touched, region)
                maintained = clones
            except Exception as error:
                warnings.warn(
                    f"warm fork degraded to cold: refreshing "
                    f"{len(clones)} cloned plan(s) for version "
                    f"{new_structure.version} failed ({error!r}); the "
                    "new head rebuilds them on demand",
                    MaintenanceWarning,
                    stacklevel=3,
                )
                maintained = {}
        self._maintainers = {}
        for key, clone in maintained.items():
            new_key = (self._cache_tag,) + key[1:]
            self.cache.put(new_key, clone.pipeline)
            self._maintainers[new_key] = clone
            # Clones are new objects: their previous spill blobs (which
            # reference the superseded head) must not be reused.
            self._dirty_plans.add(key[1:])
        return len(self._maintainers)

    def _append_wal(self, effective, result: CommitResult) -> None:
        """Durably log one acknowledged commit (fsync before return)."""
        record = WalRecord(
            version_before=result.version_before,
            version_after=result.version_after,
            generation=self.structure.generation,
            ops=tuple(effective),
        )
        try:
            self._store.append(record)
        except Exception as error:
            self._store_broken = True
            raise DurabilityError(
                f"write-ahead log append failed: {error}; the commit is "
                "applied in memory but NOT durable — checkpoint() to "
                "restore durability"
            ) from error

    # -- durability (snapshot + WAL) -----------------------------------

    @classmethod
    def open(
        cls,
        path,
        structure: Optional[Structure] = None,
        sync: bool = True,
        load_warm: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        **options,
    ) -> "Database":
        """Open (or create) a durable database at ``path``.

        When ``path`` holds a store, the latest snapshot is loaded, the
        intact write-ahead-log tail is replayed (torn trailing records —
        crash artifacts of unacknowledged commits — are truncated), and
        the spilled warm pipeline cache is reloaded so the first query
        against a previously-prepared plan skips preprocessing entirely.
        When ``path`` is empty, ``structure`` seeds a new store with an
        initial snapshot.  Every later commit through the returned
        session is appended to the WAL (fsync before acknowledge, unless
        ``sync=False``); call :meth:`checkpoint` to rotate the log into
        a fresh snapshot + warm spill.  ``load_warm=False`` forces a
        cold reopen (used by recovery benchmarks).  Remaining keyword
        ``options`` go to the :class:`Database` constructor.
        """
        store = DurableStore(path, sync=sync, segment_bytes=segment_bytes)
        if store.exists():
            if structure is not None:
                raise DurabilityError(
                    f"{os.fspath(path)!r} already holds a database; open "
                    "it without structure= (or point at an empty "
                    "directory to create a new one)"
                )
            restored = store.restore(load_warm=load_warm)
            head = restored.warm_structure or restored.structure
            # A pickled head may carry the previous session's guard.
            head._write_guard = None
            db = cls(head, **options)
            db._store = store
            try:
                if restored.warm_entries:
                    db._seed_warm_entries(restored.warm_entries)
                db._replay_wal(restored.records)
            except BaseException:
                db._store = None
                db.close()
                store.close()
                raise
            return db
        if structure is None:
            raise DurabilityError(
                f"no database at {os.fspath(path)!r}; pass structure= "
                "to create one"
            )
        db = cls(structure, **options)
        try:
            store.initialize(structure)
        except BaseException:
            db.close()
            store.close()
            raise
        db._store = store
        return db

    @property
    def durable(self) -> bool:
        """True when commits are written ahead to a :class:`DurableStore`."""
        return self._store is not None

    def checkpoint(self) -> CheckpointResult:
        """Rotate the WAL into a fresh snapshot + warm pipeline spill.

        Blocks commits for the duration (queries proceed).  The head
        structure is snapshotted with its version/generation lineage,
        the current head's warm pipelines are pickled alongside it (so
        the next :meth:`open` answers its first cached-plan query
        without re-running preprocessing), the manifest swaps
        atomically, and the now-redundant WAL prefix is truncated.  Also
        the recovery path after a WAL append failure: a successful
        checkpoint re-establishes a consistent on-disk base.
        """
        self._check_open()
        if self._store is None:
            raise EngineError(
                "this Database has no durable store; create one with "
                "Database.open(path, structure=...)"
            )
        self._structure_lock.acquire_write()
        try:
            with self._state_lock:
                self._refresh_locked()
                entries = [
                    (key[1], key[2], key[3], pipeline)
                    for key, pipeline in self.cache.entries_for(self._cache_tag)
                    if pipeline.structure is self.structure
                ]
                result = self._store.checkpoint(
                    self.structure, entries, dirty_keys=set(self._dirty_plans)
                )
                self._dirty_plans.clear()
                self._store_broken = False
                return result
        finally:
            self._structure_lock.release_write()

    def wal_shipment(self, after_version: int, limit: int = 1000) -> dict:
        """One replication batch: the WAL tail past ``after_version``.

        The unit the service tier ships to followers (``GET
        /db/{name}/wal?from=V`` and the WebSocket push).  Records are
        returned as their raw WAL lines, so the CRC framing survives
        end-to-end and the follower re-validates every record it
        applies.  ``reseed`` tells a follower its position predates the
        retained log (a checkpoint retired the segments it needed): it
        must re-seed from the current snapshot.  ``more`` flags a hit
        ``limit``.
        """
        self._check_open()
        if self._store is None:
            raise EngineError(
                "this Database has no durable store to ship; followers "
                "tail the write-ahead log of Database.open() sessions"
            )
        crash_point("ship.batch")
        base_version = self._store.manifest_version()
        records, more = self._store.records_since(after_version, limit=limit)
        if records:
            reseed = records[0].version_before > after_version
        else:
            reseed = after_version < base_version
        return {
            "leader_version": self.version,
            "base_version": base_version,
            "reseed": reseed,
            "more": more,
            "records": [record.to_line().rstrip("\n") for record in records],
        }

    def _seed_warm_entries(self, entries) -> int:
        """Adopt spilled ``(formula, order, eps, pipeline)`` entries as
        head cache entries, re-attaching dynamic maintainers so replayed
        WAL commits maintain them instead of invalidating them."""
        seeded = 0
        with self._state_lock:
            tag = self._cache_tag
            for entry in entries:
                try:
                    normalized, order_names, eps, pipeline = entry
                except (TypeError, ValueError):
                    continue
                if eps != self.eps or pipeline.structure is not self.structure:
                    continue
                key = (tag, normalized, order_names, eps)
                self.cache.put(key, pipeline)
                seeded += 1
                if (
                    self.maintain
                    and key not in self._maintainers
                    and supports_maintenance(pipeline)
                ):
                    self._maintainers[key] = PipelineMaintainer(pipeline)
        return seeded

    def _replay_wal(self, records) -> int:
        """Re-commit the WAL tail (records past the snapshot) in order.

        Replay runs through the ordinary commit path with logging off —
        maintained (possibly just-reloaded) plans stay warm across it —
        and ends with a lineage fixup: in-place replay never forks, so
        the generation recorded by the final WAL record is adopted
        explicitly.
        """
        replayed = 0
        last: Optional[WalRecord] = None
        for record in records:
            if record.version_after <= self.structure.version:
                continue  # pre-snapshot overlap (checkpoint raced a crash)
            if record.version_before != self.structure.version:
                raise DurabilityError(
                    f"write-ahead log gap: the next record expects "
                    f"version {record.version_before}, but the store "
                    f"replayed to {self.structure.version}"
                )
            self._commit(list(record.ops), log=False)
            if self.structure.version != record.version_after:
                raise DurabilityError(
                    f"replay diverged: a commit landed at version "
                    f"{self.structure.version} where the log recorded "
                    f"{record.version_after}"
                )
            replayed += 1
            last = record
        if last is not None and last.generation != self.structure.generation:
            self._restore_generation(last.generation)
        return replayed

    def _restore_generation(self, generation: int) -> None:
        """Adopt the persisted fork generation after WAL replay.

        Intermediate generations need no replay — nothing can pin a
        version that died with the previous process — so one final jump
        restores the lineage; warm cache entries and maintainers move to
        the corrected tag.
        """
        with self._state_lock:
            if generation == self.structure.generation:
                return
            old_tag = self._cache_tag
            self.structure._restore_lineage(self.structure.version, generation)
            self._cache_tag = self._tag(self._fingerprint)
            keep = {key for key, _ in self.cache.entries_for(old_tag)}
            self.cache.rekey(old_tag, self._cache_tag, keep=keep)
            self._maintainers = {
                (
                    (self._cache_tag,) + key[1:]
                    if key[0] == old_tag
                    else key
                ): maintainer
                for key, maintainer in self._maintainers.items()
            }

    # -- structure staleness -------------------------------------------

    @property
    def structure_fingerprint(self) -> str:
        with self._state_lock:
            self._refresh_locked()
            return self._fingerprint

    def _refresh(self) -> None:
        with self._state_lock:
            self._refresh_locked()

    def _refresh_locked(self) -> None:
        """Detect *external* mutations and invalidate every derived cache.

        Updates applied through :meth:`insert_fact` / :meth:`remove_fact`
        never reach this path; a direct ``structure.add_fact`` by the
        caller does, and costs the full fingerprint-keyed invalidation —
        the maintainers never saw the pre-update neighborhoods, so their
        pipelines cannot be trusted.
        """
        if self.structure.version == self._version:
            return
        stale_tag = self._cache_tag
        self._fingerprint = fingerprint(self.structure)
        self._cache_tag = self._tag(self._fingerprint)
        self._version = self.structure.version
        self._graph_templates.clear()
        with self._locks_guard:
            self._template_locks.clear()
        self._maintainers.clear()
        self.cache.invalidate(stale_tag)

    def invalidate(self) -> None:
        """Drop every cached pipeline, maintainer, and graph template."""
        with self._state_lock:
            self._graph_templates.clear()
            self._maintainers.clear()
            self.cache.invalidate()
            self._fingerprint = fingerprint(self.structure)
            self._cache_tag = self._tag(self._fingerprint)
            self._version = self.structure.version
        with self._locks_guard:
            self._template_locks.clear()

    # -- shared preprocessing ------------------------------------------

    def _lease_build_lock(self, key: CacheKey) -> threading.Lock:
        """Take a lease on the per-cache-key build lock.

        Distinct keys get distinct locks, so cold builds of *different*
        queries overlap; racing builds of the *same* key serialize and
        the loser lands on the winner's cache entry.  Leasing (instead
        of pruning idle locks) guarantees a lock handed to one thread is
        never replaced under another: the entry lives exactly as long as
        some prepare holds a lease, so the registry is bounded by the
        number of concurrent prepares.  Pair with
        :meth:`_release_build_lock`.
        """
        with self._locks_guard:
            entry = self._build_locks.get(key)
            if entry is None:
                entry = self._build_locks[key] = [threading.Lock(), 0]
            entry[1] += 1
            return entry[0]

    def _release_build_lock(self, key: CacheKey) -> None:
        with self._locks_guard:
            entry = self._build_locks.get(key)
            if entry is not None:
                entry[1] -= 1
                if entry[1] <= 0:
                    del self._build_locks[key]

    def _template_lock_for(self, key) -> threading.Lock:
        with self._locks_guard:
            lock = self._template_locks.get(key)
            if lock is None:
                lock = self._template_locks[key] = threading.Lock()
            return lock

    def _graph_factory_for(self, tag: str):
        """Clone-from-template colored graph construction, bound to one
        structure version.

        Guarded per ``(version tag, arity, link_radius)``: concurrent
        cold builds of equal-shape queries enumerate cluster tuples
        once; different shapes build their templates in parallel.  The
        generation-tagged fingerprint in the key makes a template built
        against one structure state unreachable from any other —
        snapshot builds at an old version and head builds at the new
        one never share.
        """

        def factory(structure, evaluator, arity, link_radius, max_nodes=5_000_000):
            key = (tag, arity, link_radius)
            with self._template_lock_for(key):
                template = self._graph_templates.get(key)
                if template is None:
                    template = build_colored_graph(
                        structure, evaluator, arity, link_radius, max_nodes=max_nodes
                    )
                    self._graph_templates[key] = template
            return template.clone()

        return factory

    def _prepare(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        budget=None,
    ) -> Tuple[Pipeline, Optional[CacheKey]]:
        """The cached pipeline for a query at the *head* version
        (building it on a miss).

        Thread-safe: the whole prepare holds the structure lock's *read*
        side (session commits hold the write side, so a mutation can
        neither tear a build's structure reads nor slip between key
        computation and cache insertion).  Mutating the structure
        *directly* (not through the session) remains uncoordinated: the
        legacy contract — stale handles, full fingerprint-keyed
        invalidation at the next access — applies.
        """
        formula = coerce_formula(query)
        variable_order = coerce_order(order)
        self._structure_lock.acquire_read()
        try:
            with self._state_lock:
                self._refresh_locked()
                structure = self.structure
                tag = self._cache_tag
            return self._prepare_at(
                structure, tag, formula, variable_order, budget
            )
        finally:
            self._structure_lock.release_read()

    def _prepare_at(
        self,
        structure: Structure,
        tag: str,
        formula: Formula,
        variable_order: Optional[Tuple[Var, ...]],
        budget=None,
    ) -> Tuple[Pipeline, Optional[CacheKey]]:
        """The cached pipeline for a query at one pinned version.

        Shared by head prepares and snapshot prepares; the caller holds
        the structure lock's read side.  Cache bookkeeping runs under
        the session state lock, and the expensive :class:`Pipeline`
        build runs under the key's own lease
        (:meth:`_lease_build_lock`) — distinct cold queries do not
        serialize their builds behind one another.  Dynamic maintainers
        attach only to plans built at the current head (superseded
        versions are frozen — there is nothing to maintain).
        """
        if budget is not None:
            # Budgets change pipeline shape but are not part of the
            # cache key; budgeted plans are built fresh, never cached.
            pipeline = Pipeline(
                structure,
                formula,
                order=variable_order,
                eps=self.eps,
                budget=budget,
            )
            return pipeline, None
        key = cache_key(tag, formula, variable_order, self.eps)
        build_lock = self._lease_build_lock(key)
        try:
            with build_lock:
                with self._state_lock:
                    pipeline = self.cache.get(key)
                if pipeline is None:
                    pipeline = Pipeline(
                        structure,
                        formula,
                        order=variable_order,
                        eps=self.eps,
                        graph_factory=(
                            self._graph_factory_for(tag)
                            if self.share_graphs
                            else None
                        ),
                    )
                    with self._state_lock:
                        self.cache.put(key, pipeline)
                        self._dirty_plans.add(key[1:])
                with self._state_lock:
                    if (
                        self.maintain
                        and structure is self.structure
                        and tag == self._cache_tag
                        and key not in self._maintainers
                        and supports_maintenance(pipeline)
                    ):
                        self._maintainers[key] = PipelineMaintainer(pipeline)
                    self._prune_maintainers()
        finally:
            self._release_build_lock(key)
        return pipeline, key

    def _prune_maintainers(self) -> None:
        """Cache evictions may drop maintained plans; never maintain
        pipelines nothing can hit anymore."""
        if self._maintainers:
            self._maintainers = {
                key: maintainer
                for key, maintainer in self._maintainers.items()
                if key in self.cache
            }

    def _is_maintained(self, key: Optional[CacheKey]) -> bool:
        return key is not None and key in self._maintainers

    # -- observability -------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cache + template + maintainer + pool observability counters."""
        stats = self.cache.stats()
        stats["graph_templates"] = len(self._graph_templates)
        stats["maintained_plans"] = len(self._maintainers)
        with self._state_lock:
            stats["pinned_versions"] = len(self._pins)
            stats["superseded_pinned_versions"] = sum(
                1 for tag in self._pins if tag != self._cache_tag
            )
            stats["retention_budget"] = self._retention_budget
            stats["durable"] = int(self._store is not None)
        if self._store is not None:
            wal = self._store.stats()
            stats["wal_records"] = wal["wal_records"]
            stats["wal_bytes"] = wal["wal_bytes"]
            stats["wal_segments"] = wal["wal_segments"]
            stats["dirty_plans"] = len(self._dirty_plans)
        stats.update(
            {f"pool_{key}": value for key, value in self.pool.stats().items()}
        )
        return stats

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this Database session is closed")

    def close(self) -> None:
        """Shut down the owned worker pool.  Idempotent.

        Outstanding :class:`~repro.session.answers.Answers` handles keep
        any answers they already pulled; new queries (and new parallel
        pulls through the pool) raise :class:`repro.errors.EngineError`.
        """
        if self._closed:
            return
        self._closed = True
        if self._guard_installed and not self.structure.frozen:
            self.structure._write_guard = None
        if self._store is not None:
            self._store.close()
        self.pool.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Database(n={self.structure.cardinality}, "
            f"cache={len(self.cache)}, maintained={len(self._maintainers)}, "
            f"{state})"
        )
