"""Structure-assisted Gaifman localization (Section 4, Step 1).

The paper's preprocessing first rewrites the input query into Gaifman
normal form and immediately *evaluates* every basic-local sentence on the
input structure ``A`` (they are sentences, so they are just true or false
on ``A``).  The syntactic detour through Gaifman normal form is what makes
the constants non-elementary (see the paper's conclusion).

This module fuses the two steps: it transforms an arbitrary FO query into
an equivalent-on-``A`` *local* formula directly, evaluating the global
content against ``A`` as it goes.  The result is a formula in which

* every quantifier is relativized to a neighborhood of the free variables
  (:class:`~repro.fo.syntax.ExistsNear` / ``ForallNear``),
* "a far witness exists" conditions appear as counting atoms
  :class:`~repro.fo.syntax.CountCmp` over *derived unary predicates*
  materialized on the structure,

which is exactly the r-local form the rest of the pipeline (Steps 2-5 of
Proposition 3.4) consumes.  The key identity, for a local condition
``U(z)`` and threshold ``T``::

    exists z (dist(z, x-bar) > T and U(z))   iff
    |U ∩ N_T(x-bar)| < |U|

All rewrites preserve equivalence **on the given structure**; complexity
matches the paper's bounds (each derived predicate costs one pass over the
domain with neighborhood-bounded evaluation, i.e. ``O(n * d^{h(|q|)})``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

from repro.errors import EvaluationError, QueryError, UnsupportedQueryError
from repro.fo.normalize import simplify, to_cnf, to_dnf, to_nnf
from repro.fo.syntax import (
    And,
    CountCmp,
    DistAtom,
    Eq,
    Exists,
    ExistsNear,
    FALSE,
    FalseF,
    Forall,
    ForallNear,
    Formula,
    Not,
    Or,
    RelAtom,
    TRUE,
    TotalCount,
    TrueF,
    Var,
    and_,
    locality_radius,
    not_,
    or_,
    rename_apart,
)
from repro.structures.structure import Structure

Element = Hashable


@dataclass
class LocalizationBudget:
    """Guard rails against the paper's non-elementary worst case."""

    max_radius: int = 256
    max_count_split: int = 4096
    max_derived: int = 512


class LocalEvaluator:
    """Evaluates *local* formulas with neighborhood-bounded cost.

    Differs from :mod:`repro.fo.semantics` in three ways: relativized
    quantifiers iterate over cached balls, unary relations (including
    derived ones) are cached as sets, and (formula, assignment) results are
    memoized.  It refuses unrelativized quantifiers — those must have been
    eliminated by :func:`localize` first.
    """

    def __init__(self, structure: Structure, extra_unary: Dict[str, Set[Element]]):
        self.structure = structure
        self.extra_unary = extra_unary
        self._unary_cache: Dict[str, FrozenSet[Element]] = {}
        self._ball_cache: Dict[Tuple[Element, int], FrozenSet[Element]] = {}
        self._memo: Dict[Tuple[int, Tuple], bool] = {}

    def __getstate__(self):
        # The memo is keyed by id(formula) — meaningless (and collidable)
        # in another process or after a pickle round-trip — and the other
        # caches rebuild lazily, so none of them travels.
        state = self.__dict__.copy()
        state["_unary_cache"] = {}
        state["_ball_cache"] = {}
        state["_memo"] = {}
        return state

    # -- caches ---------------------------------------------------------

    def unary_set(self, name: str) -> FrozenSet[Element]:
        cached = self._unary_cache.get(name)
        if cached is not None:
            return cached
        if name in self.extra_unary:
            members = frozenset(self.extra_unary[name])
        elif name in self.structure.signature:
            if self.structure.signature.arity(name) != 1:
                raise QueryError(f"{name!r} is not unary")
            members = frozenset(fact[0] for fact in self.structure.facts(name))
        else:
            raise QueryError(f"unknown unary relation {name!r}")
        self._unary_cache[name] = members
        return members

    def invalidate_unary(self, name: str) -> None:
        self._unary_cache.pop(name, None)

    def ball(self, element: Element, radius: int) -> FrozenSet[Element]:
        key = (element, radius)
        cached = self._ball_cache.get(key)
        if cached is not None:
            return cached
        members = {element}
        frontier = [element]
        for _ in range(radius):
            next_frontier = []
            for current in frontier:
                for neighbor in self.structure.neighbors(current):
                    if neighbor not in members:
                        members.add(neighbor)
                        next_frontier.append(neighbor)
            if not next_frontier:
                break
            frontier = next_frontier
        result = frozenset(members)
        self._ball_cache[key] = result
        return result

    def ball_of(self, elements, radius: int) -> Set[Element]:
        region: Set[Element] = set()
        for element in elements:
            region |= self.ball(element, radius)
        return region

    def within(self, left: Element, right: Element, bound: int) -> bool:
        return right in self.ball(left, bound)

    # -- evaluation -------------------------------------------------------

    def holds(self, formula: Formula, assignment: Mapping[Var, Element]) -> bool:
        key = (
            id(formula),
            tuple(sorted((var.name, assignment[var]) for var in formula.free)),
        )
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._eval(formula, dict(assignment))
        self._memo[key] = result
        return result

    def _eval(self, formula: Formula, assignment: Dict[Var, Element]) -> bool:
        if isinstance(formula, TrueF):
            return True
        if isinstance(formula, FalseF):
            return False
        if isinstance(formula, RelAtom):
            if len(formula.args) == 1:
                return assignment[formula.args[0]] in self.unary_set(formula.relation)
            values = tuple(assignment[arg] for arg in formula.args)
            return self.structure.has_fact(formula.relation, *values)
        if isinstance(formula, Eq):
            return assignment[formula.left] == assignment[formula.right]
        if isinstance(formula, DistAtom):
            close = self.within(
                assignment[formula.left], assignment[formula.right], formula.bound
            )
            return close if formula.within else not close
        if isinstance(formula, CountCmp):
            members = self.unary_set(formula.unary)
            region = self.ball_of(
                (assignment[var] for var in formula.vars), formula.radius
            )
            count = sum(1 for element in region if element in members)
            if isinstance(formula.rhs, TotalCount):
                rhs_value = len(self.unary_set(formula.rhs.unary)) + formula.offset
            else:
                rhs_value = formula.rhs
            return formula.compare(count, rhs_value)
        if isinstance(formula, Not):
            return not self._eval(formula.child, assignment)
        if isinstance(formula, And):
            return all(self._eval(child, assignment) for child in formula.children)
        if isinstance(formula, Or):
            return any(self._eval(child, assignment) for child in formula.children)
        if isinstance(formula, ExistsNear):
            region = self.ball_of(
                (assignment[center] for center in formula.centers), formula.radius
            )
            for element in region:
                assignment[formula.var] = element
                if self._eval(formula.child, assignment):
                    del assignment[formula.var]
                    return True
            assignment.pop(formula.var, None)
            return False
        if isinstance(formula, ForallNear):
            region = self.ball_of(
                (assignment[center] for center in formula.centers), formula.radius
            )
            for element in region:
                assignment[formula.var] = element
                if not self._eval(formula.child, assignment):
                    del assignment[formula.var]
                    return False
            assignment.pop(formula.var, None)
            return True
        if isinstance(formula, (Exists, Forall)):
            raise EvaluationError(
                "LocalEvaluator received an unrelativized quantifier; "
                "run localize() first"
            )
        raise QueryError(f"unknown formula node {formula!r}")


@dataclass
class LocalizedQuery:
    """The output of :func:`localize`.

    ``formula`` is local (all quantifiers relativized); evaluating it on
    the original structure *extended with* ``extra_unary`` agrees with the
    input query on every tuple.  ``radius`` bounds its locality radius.
    """

    formula: Formula
    structure: Structure
    extra_unary: Dict[str, Set[Element]]
    derived_formulas: Dict[str, Formula]
    evaluator: LocalEvaluator
    radius: int
    sentences_evaluated: int = 0
    # The localizer context; needed again when the pipeline separates the
    # local formula across cluster blocks (CountCmp splitting).
    localizer: Optional["_Localizer"] = None

    def materialize(self) -> Structure:
        """The extended structure as a plain :class:`Structure` (for oracles)."""
        extended_signature = self.structure.signature.extend(
            {name: 1 for name in self.extra_unary}
        )
        extended = Structure(extended_signature, self.structure.domain)
        for name, facts in (
            (symbol.name, self.structure.facts(symbol.name))
            for symbol in self.structure.signature
        ):
            for fact in facts:
                extended.add_fact(name, *fact)
        for name, members in self.extra_unary.items():
            for element in members:
                extended.add_fact(name, element)
        return extended


class _Localizer:
    def __init__(self, structure: Structure, budget: LocalizationBudget):
        self.structure = structure
        self.budget = budget
        self.extra_unary: Dict[str, Set[Element]] = {}
        self.derived_formulas: Dict[str, Formula] = {}
        self._derived_by_formula: Dict[Formula, str] = {}
        self.evaluator = LocalEvaluator(structure, self.extra_unary)
        self.sentences_evaluated = 0
        self._max_count_cache: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # Derived unary predicates
    # ------------------------------------------------------------------

    def derived(self, formula: Formula, var: Var) -> str:
        """Materialize ``{a : A |= formula(a)}`` as a fresh unary predicate.

        ``formula`` must be local with ``var`` as its only free variable.
        Deduplicates by formula identity so repeated subqueries cost one
        pass each.
        """
        if formula.free != frozenset((var,)):
            raise EvaluationError(
                f"derived predicate needs exactly one free variable {var}, "
                f"got {sorted(v.name for v in formula.free)}"
            )
        existing = self._derived_by_formula.get(formula)
        if existing is not None:
            return existing
        if len(self.derived_formulas) >= self.budget.max_derived:
            raise UnsupportedQueryError(
                f"localization needs more than {self.budget.max_derived} "
                "derived predicates; the query is too complex"
            )
        name = f"_D{len(self.derived_formulas)}"
        members = {
            element
            for element in self.structure.domain
            if self.evaluator.holds(formula, {var: element})
        }
        self.extra_unary[name] = members
        self.derived_formulas[name] = formula
        self._derived_by_formula[formula] = name
        self.evaluator.invalidate_unary(name)
        return name

    def max_ball_count(self, unary: str, radius: int) -> int:
        """Max over single elements ``a`` of ``|U ∩ N_radius(a)|``.

        Used to bound the value range when splitting a CountCmp across far
        apart variable groups.
        """
        key = (unary, radius)
        cached = self._max_count_cache.get(key)
        if cached is not None:
            return cached
        members = self.evaluator.unary_set(unary)
        best = 0
        for element in self.structure.domain:
            ball = self.evaluator.ball(element, radius)
            count = sum(1 for member in ball if member in members)
            if count > best:
                best = count
        self._max_count_cache[key] = best
        return best

    # ------------------------------------------------------------------
    # Main recursion
    # ------------------------------------------------------------------

    def localize(self, formula: Formula) -> Formula:
        if isinstance(formula, (TrueF, FalseF, RelAtom, Eq, DistAtom, CountCmp)):
            return formula
        if isinstance(formula, Not):
            return not_(self.localize(formula.child))
        if isinstance(formula, And):
            return and_(*(self.localize(child) for child in formula.children))
        if isinstance(formula, Or):
            return or_(*(self.localize(child) for child in formula.children))
        if isinstance(formula, ExistsNear):
            return ExistsNear(
                formula.var,
                formula.centers,
                formula.radius,
                self.localize(formula.child),
            )
        if isinstance(formula, ForallNear):
            return ForallNear(
                formula.var,
                formula.centers,
                formula.radius,
                self.localize(formula.child),
            )
        if isinstance(formula, Exists):
            return self._eliminate_exists(formula.var, self.localize(formula.child))
        if isinstance(formula, Forall):
            # forall z. beta  ==  not exists z. not beta
            negated = to_nnf(not_(formula.child))
            eliminated = self._eliminate_exists(formula.var, self.localize(negated))
            return to_nnf(not_(eliminated))
        raise QueryError(f"unknown formula node {formula!r}")

    def _eliminate_exists(self, var: Var, body: Formula) -> Formula:
        body = simplify(body)
        if var not in body.free:
            # exists z. beta with z not free: domain is non-empty, so this
            # is just beta.
            return body
        other = tuple(sorted(body.free - {var}))
        if not other:
            # A "sentence" up to the single variable: evaluate on A now.
            self.sentences_evaluated += 1
            holds = any(
                self.evaluator.holds(body, {var: element})
                for element in self.structure.domain
            )
            return TRUE if holds else FALSE
        radius = locality_radius(body)
        threshold = 2 * radius + 1
        if threshold > self.budget.max_radius:
            raise UnsupportedQueryError(
                f"locality radius {threshold} exceeds budget "
                f"{self.budget.max_radius} (the paper's constants are "
                "non-elementary in quantifier nesting)"
            )
        near = ExistsNear(var, other, threshold, body)
        far = self._far_part(var, other, threshold, body)
        return or_(near, far)

    def _far_part(
        self, var: Var, other: Tuple[Var, ...], threshold: int, body: Formula
    ) -> Formula:
        """``exists var: dist(var, other) > threshold and body``.

        Separates ``body`` under the farness assumption, then for each DNF
        clause materializes the var-side condition as a derived unary
        predicate and rewrites existence of a far witness as a counting
        comparison against the predicate's total.
        """
        sides: Dict[Var, int] = {var: 0}
        for outer in other:
            sides[outer] = 1
        separated = separate(body, sides, threshold, self)
        # to_dnf requires NNF: localizing a negated subformula (or
        # separation itself) can leave Not over And/Or, which to_dnf
        # would otherwise treat as one opaque "literal" spanning both
        # sides — and a witness literal mentioning an outer variable
        # cannot be materialized as a unary predicate.
        separated = simplify(to_nnf(separated))
        if isinstance(separated, FalseF):
            return FALSE
        clauses = to_dnf(separated)
        parts: List[Formula] = []
        for clause in clauses:
            witness_literals: List[Formula] = []
            outer_literals: List[Formula] = []
            for literal in clause:
                if var in literal.free:
                    witness_literals.append(literal)
                else:
                    outer_literals.append(literal)
            witness = and_(*witness_literals)
            if isinstance(witness, FalseF):
                continue
            if not witness_literals:
                witness = TRUE
            # Materialize {a : A |= witness(a)}; TRUE means "any element".
            if isinstance(witness, TrueF):
                predicate = self.derived(_EVERYTHING, _EVERYTHING_VAR)
            else:
                predicate = self.derived(witness, var)
            count_atom = CountCmp(
                predicate, threshold, other, "<", TotalCount(predicate)
            )
            parts.append(and_(*outer_literals, count_atom))
        return or_(*parts)


# A trivially-true unary condition: used to materialize the "all elements"
# predicate for far parts with no witness constraint.
_EVERYTHING_VAR = Var("_any")
_EVERYTHING = Eq(_EVERYTHING_VAR, _EVERYTHING_VAR)


# ----------------------------------------------------------------------
# Separation: rewriting under a pairwise-farness assumption
# ----------------------------------------------------------------------


def _var_info(
    formula: Formula, sides: Mapping[Var, int]
) -> Dict[Var, Tuple[int, int]]:
    """Seed (side, depth) info for the free variables."""
    return {var: (side, 0) for var, side in sides.items()}


def separate(
    formula: Formula,
    sides: Mapping[Var, int],
    gap: int,
    localizer: Optional[_Localizer] = None,
) -> Formula:
    """Rewrite ``formula`` assuming variable groups are pairwise far apart.

    ``sides`` maps each free variable to a group id; the assumption is that
    any two elements assigned to variables of different groups are at
    Gaifman distance > ``gap``.  The result is equivalent under that
    assumption and every atomic subformula (including relativized
    quantifications) mentions variables of one group only:

    * cross-group relational atoms and equalities are replaced by false,
      cross-group distance atoms are decided by the gap;
    * relativized quantifiers over multi-group centers split into one
      quantifier per group (``N_r(C1 ∪ C2) = N_r(C1) ∪ N_r(C2)``);
    * subformulas not mentioning the bound variable are hoisted out of
      quantifiers (Feferman-Vaught style);
    * counting atoms over multi-group centers split into sums over
      per-group counts (balls are disjoint under the gap assumption).

    ``gap`` must exceed twice the locality radius of ``formula`` — the
    caller (localization with ``gap = 2r+1``) guarantees this.
    """
    info = _var_info(formula, sides)
    return _separate(formula, info, gap, localizer)


def _cross_forced(depth_u: int, depth_v: int, interaction: int, gap: int) -> bool:
    """Is a cross-group interaction at the given depths decided by the gap?

    Elements bound at depths ``depth_u`` / ``depth_v`` from their group
    anchors are at distance *strictly greater than* ``gap - du - dv``; an
    interaction requiring distance <= ``interaction`` (atom: 1, equality:
    0, distance atom: its bound, counting disjointness: 2*radius) is
    therefore forced as soon as ``gap - du - dv >= interaction``.
    """
    return gap - depth_u - depth_v >= interaction


def _separate(
    formula: Formula,
    info: Dict[Var, Tuple[int, int]],
    gap: int,
    localizer: Optional[_Localizer],
) -> Formula:
    if isinstance(formula, (TrueF, FalseF)):
        return formula
    if isinstance(formula, RelAtom):
        return _separate_atom(formula, formula.args, 1, info, gap)
    if isinstance(formula, Eq):
        return _separate_atom(formula, (formula.left, formula.right), 0, info, gap)
    if isinstance(formula, DistAtom):
        pair = (formula.left, formula.right)
        group_ids = {info[v][0] for v in pair}
        if len(group_ids) <= 1:
            return formula
        depth_total = sum(info[v][1] for v in pair)
        if _cross_forced(info[pair[0]][1], info[pair[1]][1], formula.bound, gap):
            return FALSE if formula.within else TRUE
        raise EvaluationError(
            f"separation gap {gap} too small for {formula} at depth {depth_total}"
        )
    if isinstance(formula, CountCmp):
        return _separate_count(formula, info, gap, localizer)
    if isinstance(formula, Not):
        inner = _separate(formula.child, info, gap, localizer)
        return not_(inner)
    if isinstance(formula, And):
        return and_(*(_separate(child, info, gap, localizer) for child in formula.children))
    if isinstance(formula, Or):
        return or_(*(_separate(child, info, gap, localizer) for child in formula.children))
    if isinstance(formula, (ExistsNear, ForallNear)):
        return _separate_near(formula, info, gap, localizer)
    if isinstance(formula, (Exists, Forall)):
        raise EvaluationError(
            "separate() requires a local formula; localize quantifiers first"
        )
    raise QueryError(f"unknown formula node {formula!r}")


def _separate_atom(
    formula: Formula,
    args: Tuple[Var, ...],
    interaction: int,
    info: Dict[Var, Tuple[int, int]],
    gap: int,
) -> Formula:
    group_ids = {info[arg][0] for arg in args}
    if len(group_ids) <= 1:
        return formula
    # Any pair of arguments from different groups falsifies the atom
    # provided the gap is large enough at their depths.
    for left in args:
        for right in args:
            if info[left][0] != info[right][0]:
                if not _cross_forced(info[left][1], info[right][1], interaction, gap):
                    raise EvaluationError(
                        f"separation gap {gap} too small for atom {formula}"
                    )
    return FALSE


def _separate_count(
    formula: CountCmp,
    info: Dict[Var, Tuple[int, int]],
    gap: int,
    localizer: Optional[_Localizer],
) -> Formula:
    groups: Dict[int, List[Var]] = {}
    for center in formula.vars:
        groups.setdefault(info[center][0], []).append(center)
    if len(groups) <= 1:
        return formula
    # Balls around different groups are disjoint when the gap exceeds the
    # depths plus twice the counting radius.
    for left in formula.vars:
        for right in formula.vars:
            if info[left][0] != info[right][0]:
                if not _cross_forced(
                    info[left][1], info[right][1], 2 * formula.radius, gap
                ):
                    raise EvaluationError(
                        f"separation gap {gap} too small for count atom {formula}"
                    )
    if localizer is None:
        raise EvaluationError(
            "splitting a multi-group count atom requires structure access"
        )
    group_list = sorted(groups.items())
    head_group = group_list[0][1]
    tail_groups = group_list[1:]
    cap_per_center = localizer.max_ball_count(formula.unary, formula.radius)
    combos: List[Tuple[Tuple[Tuple[Var, ...], int], ...]] = [()]
    total_combos = 1
    for _, centers in tail_groups:
        cap = cap_per_center * len(centers)
        total_combos *= cap + 1
        if total_combos > localizer.budget.max_count_split:
            raise UnsupportedQueryError(
                "splitting a counting atom across far groups needs "
                f"{total_combos} > {localizer.budget.max_count_split} cases"
            )
        combos = [
            existing + ((tuple(centers), value),)
            for existing in combos
            for value in range(cap + 1)
        ]
    disjuncts: List[Formula] = []
    for combo in combos:
        fixed_counts = [
            CountCmp(formula.unary, formula.radius, centers, "==", value)
            for centers, value in combo
        ]
        consumed = sum(value for _, value in combo)
        head = CountCmp(
            formula.unary,
            formula.radius,
            tuple(head_group),
            formula.op,
            formula.rhs,
            formula.offset - consumed,
        )
        disjuncts.append(and_(*fixed_counts, head))
    return or_(*disjuncts)


def _separate_near(
    formula: Formula,
    info: Dict[Var, Tuple[int, int]],
    gap: int,
    localizer: Optional[_Localizer],
) -> Formula:
    is_exists = isinstance(formula, ExistsNear)
    groups: Dict[int, List[Var]] = {}
    for center in formula.centers:
        groups.setdefault(info[center][0], []).append(center)
    branches: List[Formula] = []
    for group_id, centers in sorted(groups.items()):
        depth = max(info[center][1] for center in centers) + formula.radius
        inner_info = dict(info)
        inner_info[formula.var] = (group_id, depth)
        child = _separate(formula.child, inner_info, gap, localizer)
        child = simplify(child)
        hoisted = _hoist(
            formula.var, tuple(centers), formula.radius, child, is_exists
        )
        branches.append(hoisted)
    if is_exists:
        return or_(*branches)
    return and_(*branches)


def _hoist(
    var: Var,
    centers: Tuple[Var, ...],
    radius: int,
    child: Formula,
    is_exists: bool,
) -> Formula:
    """Pull subformulas not mentioning ``var`` out of the quantifier.

    ``exists var in B: OR_c (In_c(var) and Out_c)`` becomes
    ``OR_c (Out_c and exists var in B: In_c)``; dually for forall with CNF.
    The ball ``B`` is never empty (it contains its centers), so
    ``exists var in B: true`` is true and ``forall var in B: false`` is
    false — :func:`simplify` applies those rules.
    """
    clauses = to_dnf(child) if is_exists else to_cnf(child)
    combine_outer = or_ if is_exists else and_
    combine_inner = and_ if is_exists else or_
    rebuilt: List[Formula] = []
    for clause in clauses:
        inner = [literal for literal in clause if var in literal.free]
        outer = [literal for literal in clause if var not in literal.free]
        inner_formula = combine_inner(*inner) if inner else (TRUE if is_exists else FALSE)
        cls = ExistsNear if is_exists else ForallNear
        quantified = simplify(cls(var, centers, radius, inner_formula))
        rebuilt.append(combine_inner(*outer, quantified))
    if not rebuilt:
        return TRUE if not is_exists else FALSE
    return simplify(combine_outer(*rebuilt))


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------


def localize(
    formula: Formula,
    structure: Structure,
    budget: Optional[LocalizationBudget] = None,
) -> LocalizedQuery:
    """Rewrite ``formula`` into a local formula equivalent on ``structure``.

    Returns a :class:`LocalizedQuery`; see the module docstring for the
    shape of the output.  For sentences the resulting formula is simply
    ``true`` or ``false`` — this *is* the model checking algorithm of
    Theorem 2.4, run during preprocessing.
    """
    budget = budget or LocalizationBudget()
    prepared = to_nnf(rename_apart(formula))
    localizer = _Localizer(structure, budget)
    local = simplify(localizer.localize(prepared))
    if isinstance(local, (TrueF, FalseF)):
        radius = 0
    else:
        radius = locality_radius(local)
    return LocalizedQuery(
        formula=local,
        structure=structure,
        extra_unary=localizer.extra_unary,
        derived_formulas=localizer.derived_formulas,
        evaluator=localizer.evaluator,
        radius=radius,
        sentences_evaluated=localizer.sentences_evaluated,
        localizer=localizer,
    )
