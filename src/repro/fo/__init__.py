"""First-order logic substrate: syntax, parser, reference semantics,
normal forms, and structure-assisted Gaifman localization."""

from typing import Union

from repro.errors import QueryError
from repro.fo.parser import parse
from repro.fo.semantics import (
    evaluate,
    free_tuple,
    naive_answers,
    naive_count,
    naive_enumerate,
    naive_test,
)
from repro.fo.syntax import (
    And,
    CountCmp,
    DistAtom,
    Eq,
    Exists,
    ExistsNear,
    FALSE,
    FalseF,
    Forall,
    ForallNear,
    Formula,
    Not,
    Or,
    RelAtom,
    TotalCount,
    TRUE,
    TrueF,
    Var,
    and_,
    atom,
    eq,
    exists,
    forall,
    not_,
    or_,
)

def coerce_formula(query: Union[Formula, str]) -> Formula:
    """The one place query input is normalized: text or :class:`Formula`.

    Every public entry point — ``Database.query``, ``prepare``,
    ``QueryBatch.submit``, ``DynamicQuery``, the pipeline cache — accepts
    ``str | Formula`` through this helper, so parsing behavior and the
    error message are identical everywhere.
    """
    if isinstance(query, str):
        return parse(query)
    if not isinstance(query, Formula):
        raise QueryError(
            f"expected a Formula or query text, got {type(query).__name__}"
        )
    return query


__all__ = [
    "And",
    "CountCmp",
    "DistAtom",
    "Eq",
    "Exists",
    "ExistsNear",
    "FALSE",
    "FalseF",
    "Forall",
    "ForallNear",
    "Formula",
    "Not",
    "Or",
    "RelAtom",
    "TRUE",
    "TotalCount",
    "TrueF",
    "Var",
    "and_",
    "atom",
    "coerce_formula",
    "eq",
    "evaluate",
    "exists",
    "forall",
    "free_tuple",
    "naive_answers",
    "naive_count",
    "naive_enumerate",
    "naive_test",
    "not_",
    "or_",
    "parse",
]
