"""Reference (naive) semantics for FO formulas over structures.

This module is the *oracle* for the whole library: every pipeline
algorithm is tested against it.  It is deliberately the most direct
implementation possible — recursion over the formula with quantifiers
iterating over the whole domain — so its correctness is apparent.

It is also the paper's strawman: :func:`naive_answers` materializes
``q(A)`` by iterating all ``|A|^k`` tuples, which is exactly the algorithm
whose per-answer delay the constant-delay enumerator beats (Example 2.3).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.fo.syntax import (
    And,
    CountCmp,
    DistAtom,
    Eq,
    Exists,
    ExistsNear,
    FalseF,
    Forall,
    ForallNear,
    Formula,
    Not,
    Or,
    RelAtom,
    TotalCount,
    TrueF,
    Var,
)
from repro.structures.gaifman_graph import ball_of_set, within_distance
from repro.structures.structure import Structure

Element = Hashable
Assignment = Dict[Var, Element]


def _unary_set(structure: Structure, unary: str) -> frozenset:
    if unary not in structure.signature:
        raise QueryError(f"unknown unary relation {unary!r} in CountCmp")
    if structure.signature.arity(unary) != 1:
        raise QueryError(f"CountCmp needs a unary relation, {unary!r} is not")
    return frozenset(fact[0] for fact in structure.facts(unary))


def evaluate(
    formula: Formula, structure: Structure, assignment: Optional[Assignment] = None
) -> bool:
    """Evaluate ``formula`` under ``assignment`` (must bind all free vars)."""
    assignment = assignment or {}
    missing = formula.free - set(assignment)
    if missing:
        raise QueryError(f"unbound free variables: {sorted(v.name for v in missing)}")
    return _eval(formula, structure, assignment)


def _eval(formula: Formula, structure: Structure, assignment: Assignment) -> bool:
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, RelAtom):
        values = tuple(assignment[arg] for arg in formula.args)
        return structure.has_fact(formula.relation, *values)
    if isinstance(formula, Eq):
        return assignment[formula.left] == assignment[formula.right]
    if isinstance(formula, DistAtom):
        left = assignment[formula.left]
        right = assignment[formula.right]
        close = within_distance(structure, left, right, formula.bound)
        return close if formula.within else not close
    if isinstance(formula, CountCmp):
        unary_members = _unary_set(structure, formula.unary)
        centers = [assignment[var] for var in formula.vars]
        region = ball_of_set(structure, centers, formula.radius)
        count = sum(1 for member in region if member in unary_members)
        if isinstance(formula.rhs, TotalCount):
            rhs_value = len(_unary_set(structure, formula.rhs.unary)) + formula.offset
        else:
            rhs_value = formula.rhs
        return formula.compare(count, rhs_value)
    if isinstance(formula, Not):
        return not _eval(formula.child, structure, assignment)
    if isinstance(formula, And):
        return all(_eval(child, structure, assignment) for child in formula.children)
    if isinstance(formula, Or):
        return any(_eval(child, structure, assignment) for child in formula.children)
    if isinstance(formula, Exists):
        for element in structure.domain:
            assignment[formula.var] = element
            if _eval(formula.child, structure, assignment):
                del assignment[formula.var]
                return True
        assignment.pop(formula.var, None)
        return False
    if isinstance(formula, Forall):
        for element in structure.domain:
            assignment[formula.var] = element
            if not _eval(formula.child, structure, assignment):
                del assignment[formula.var]
                return False
        assignment.pop(formula.var, None)
        return True
    if isinstance(formula, ExistsNear):
        centers = [assignment[center] for center in formula.centers]
        region = ball_of_set(structure, centers, formula.radius)
        for element in region:
            assignment[formula.var] = element
            if _eval(formula.child, structure, assignment):
                del assignment[formula.var]
                return True
        assignment.pop(formula.var, None)
        return False
    if isinstance(formula, ForallNear):
        centers = [assignment[center] for center in formula.centers]
        region = ball_of_set(structure, centers, formula.radius)
        for element in region:
            assignment[formula.var] = element
            if not _eval(formula.child, structure, assignment):
                del assignment[formula.var]
                return False
        assignment.pop(formula.var, None)
        return True
    raise QueryError(f"unknown formula node {formula!r}")


def free_tuple(formula: Formula, order: Optional[Sequence[Var]] = None) -> Tuple[Var, ...]:
    """The free variables of ``formula`` as an ordered tuple.

    If ``order`` is given it must be duplicate-free and *cover* the free
    variables; extra variables are allowed and simply unconstrained (a
    simplification step may eliminate a variable from a formula without
    changing the intended answer arity).  Without ``order``, variables are
    sorted by name — the deterministic default shared by every component
    of the library.
    """
    if order is not None:
        ordered = tuple(v if isinstance(v, Var) else Var(v) for v in order)
        if not set(ordered) >= set(formula.free) or len(ordered) != len(set(ordered)):
            raise QueryError(
                f"variable order {[v.name for v in ordered]} does not cover "
                f"free variables {sorted(v.name for v in formula.free)}"
            )
        return ordered
    return tuple(sorted(formula.free))


def naive_answers(
    formula: Formula,
    structure: Structure,
    order: Optional[Sequence[Var]] = None,
) -> List[Tuple[Element, ...]]:
    """Materialize ``q(A)`` by brute force over all ``|A|^k`` tuples.

    Answers are returned in lexicographic order of the domain order.  For
    sentences the result is ``[()]`` when the sentence holds, else ``[]``.
    """
    variables = free_tuple(formula, order)
    if not variables:
        return [()] if evaluate(formula, structure, {}) else []
    answers = []
    assignment: Assignment = {}
    for values in product(structure.domain, repeat=len(variables)):
        for var, value in zip(variables, values):
            assignment[var] = value
        if _eval(formula, structure, assignment):
            answers.append(values)
    return answers


def naive_count(
    formula: Formula,
    structure: Structure,
    order: Optional[Sequence[Var]] = None,
) -> int:
    """``|q(A)|`` by brute force."""
    return len(naive_answers(formula, structure, order))


def naive_test(
    formula: Formula,
    structure: Structure,
    candidate: Sequence[Element],
    order: Optional[Sequence[Var]] = None,
) -> bool:
    """Test one tuple by direct evaluation."""
    variables = free_tuple(formula, order)
    if len(candidate) != len(variables):
        raise QueryError(
            f"expected a {len(variables)}-tuple, got {len(candidate)}-tuple"
        )
    assignment = dict(zip(variables, candidate))
    return evaluate(formula, structure, assignment)


def naive_enumerate(
    formula: Formula,
    structure: Structure,
    order: Optional[Sequence[Var]] = None,
) -> Iterator[Tuple[Element, ...]]:
    """Generator version of :func:`naive_answers` (lazy, same order)."""
    variables = free_tuple(formula, order)
    if not variables:
        if evaluate(formula, structure, {}):
            yield ()
        return
    assignment: Assignment = {}
    for values in product(structure.domain, repeat=len(variables)):
        for var, value in zip(variables, values):
            assignment[var] = value
        if _eval(formula, structure, assignment):
            yield values
