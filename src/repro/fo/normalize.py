"""Normal forms: negation normal form, DNF, and exclusive DNF.

The counting algorithm (Proposition 3.7) requires a disjunctive normal form
whose clauses *exclude each other*; :func:`exclusive_dnf` produces it the
robust way, by enumerating satisfying assignments over the formula's atom
set, so clauses are total conjunctions of literals and mutual exclusivity
is structural.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Sequence, Tuple

from repro.errors import QueryError
from repro.fo.syntax import (
    And,
    CountCmp,
    DistAtom,
    Eq,
    Exists,
    ExistsNear,
    FALSE,
    FalseF,
    Forall,
    ForallNear,
    Formula,
    Not,
    Or,
    RelAtom,
    TRUE,
    TrueF,
    and_,
    not_,
    or_,
)

_ATOM_TYPES = (RelAtom, Eq, DistAtom, CountCmp)


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations only on atoms.

    Quantifiers (plain and relativized) are dualized as usual.  Distance
    atoms absorb their negation by flipping ``within``.
    """
    return _nnf(formula, positive=True)


def _nnf(formula: Formula, positive: bool) -> Formula:
    if isinstance(formula, TrueF):
        return TRUE if positive else FALSE
    if isinstance(formula, FalseF):
        return FALSE if positive else TRUE
    if isinstance(formula, _ATOM_TYPES):
        if positive:
            return formula
        if isinstance(formula, DistAtom):
            return formula.negated()
        return Not(formula)
    if isinstance(formula, Not):
        return _nnf(formula.child, not positive)
    if isinstance(formula, And):
        parts = tuple(_nnf(child, positive) for child in formula.children)
        return and_(*parts) if positive else or_(*parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(child, positive) for child in formula.children)
        return or_(*parts) if positive else and_(*parts)
    if isinstance(formula, Exists):
        inner = _nnf(formula.child, positive)
        return Exists(formula.var, inner) if positive else Forall(formula.var, inner)
    if isinstance(formula, Forall):
        inner = _nnf(formula.child, positive)
        return Forall(formula.var, inner) if positive else Exists(formula.var, inner)
    if isinstance(formula, ExistsNear):
        inner = _nnf(formula.child, positive)
        cls = ExistsNear if positive else ForallNear
        return cls(formula.var, formula.centers, formula.radius, inner)
    if isinstance(formula, ForallNear):
        inner = _nnf(formula.child, positive)
        cls = ForallNear if positive else ExistsNear
        return cls(formula.var, formula.centers, formula.radius, inner)
    raise QueryError(f"unknown formula node {formula!r}")


def simplify(formula: Formula) -> Formula:
    """Bottom-up constant folding and flattening via the smart constructors."""
    if isinstance(formula, (TrueF, FalseF)) or isinstance(formula, _ATOM_TYPES):
        return formula
    if isinstance(formula, Not):
        return not_(simplify(formula.child))
    if isinstance(formula, And):
        return and_(*(simplify(child) for child in formula.children))
    if isinstance(formula, Or):
        return or_(*(simplify(child) for child in formula.children))
    if isinstance(formula, (Exists, Forall)):
        inner = simplify(formula.child)
        if isinstance(inner, TrueF):
            return TRUE
        if isinstance(inner, FalseF):
            return FALSE
        return type(formula)(formula.var, inner)
    if isinstance(formula, (ExistsNear, ForallNear)):
        inner = simplify(formula.child)
        if isinstance(inner, FalseF) and isinstance(formula, ExistsNear):
            return FALSE
        if isinstance(inner, TrueF) and isinstance(formula, ForallNear):
            return TRUE
        # "exists z near centers: true" is always true: the ball around a
        # center is never empty (it contains the center itself).
        if isinstance(inner, TrueF) and isinstance(formula, ExistsNear):
            return TRUE
        if isinstance(inner, FalseF) and isinstance(formula, ForallNear):
            return FALSE
        return type(formula)(formula.var, formula.centers, formula.radius, inner)
    raise QueryError(f"unknown formula node {formula!r}")


def boolean_atoms(formula: Formula) -> List[Formula]:
    """The maximal non-boolean subformulas, treated as opaque atoms.

    Quantified subformulas count as atoms here: DNF conversion never crosses
    a quantifier.
    """
    seen: Dict[Formula, None] = {}

    def walk(node: Formula) -> None:
        if isinstance(node, (TrueF, FalseF)):
            return
        if isinstance(node, Not):
            walk(node.child)
            return
        if isinstance(node, (And, Or)):
            for child in node.children:
                walk(child)
            return
        seen.setdefault(node, None)

    walk(formula)
    return list(seen)


def _eval_boolean(formula: Formula, valuation: Dict[Formula, bool]) -> bool:
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Not):
        return not _eval_boolean(formula.child, valuation)
    if isinstance(formula, And):
        return all(_eval_boolean(child, valuation) for child in formula.children)
    if isinstance(formula, Or):
        return any(_eval_boolean(child, valuation) for child in formula.children)
    return valuation[formula]


def exclusive_dnf(formula: Formula) -> List[Tuple[Tuple[Formula, bool], ...]]:
    """Rewrite a boolean combination as mutually exclusive DNF clauses.

    Returns a list of clauses; each clause is a tuple of ``(atom, sign)``
    literals over the *full* atom set of the formula, so any two clauses
    differ in at least one literal sign and therefore exclude each other —
    the property the counting algorithm needs (Proposition 3.7: "the
    conjunctive clauses exclude each other").

    The clause list has at most ``2^m`` entries for ``m`` atoms; ``m``
    depends only on the query, matching the paper's ``O(2^{|psi|})``.
    """
    atoms = boolean_atoms(formula)
    if len(atoms) > 20:
        raise QueryError(
            f"exclusive DNF over {len(atoms)} atoms would need 2^{len(atoms)} "
            "clauses; simplify the query"
        )
    clauses: List[Tuple[Tuple[Formula, bool], ...]] = []
    for signs in product((True, False), repeat=len(atoms)):
        valuation = dict(zip(atoms, signs))
        if _eval_boolean(formula, valuation):
            clauses.append(tuple(zip(atoms, signs)))
    return clauses


def clause_to_formula(clause: Sequence[Tuple[Formula, bool]]) -> Formula:
    """Turn an ``exclusive_dnf`` clause back into a conjunction."""
    literals = [atom if sign else not_(atom) for atom, sign in clause]
    return and_(*literals)


def to_dnf(formula: Formula) -> List[List[Formula]]:
    """Plain (non-exclusive) DNF of a boolean combination.

    Returns a list of clauses, each a list of literals (atoms or negated
    atoms).  Distributes conjunction over disjunction; the input must be in
    NNF (apply :func:`to_nnf` first).
    """
    formula = simplify(formula)
    if isinstance(formula, FalseF):
        return []
    if isinstance(formula, TrueF):
        return [[]]
    if isinstance(formula, Or):
        result: List[List[Formula]] = []
        for child in formula.children:
            result.extend(to_dnf(child))
        return result
    if isinstance(formula, And):
        partial: List[List[Formula]] = [[]]
        for child in formula.children:
            child_clauses = to_dnf(child)
            partial = [
                existing + extra for existing in partial for extra in child_clauses
            ]
        return partial
    # Literal (atom, negated atom, or quantified subformula).
    return [[formula]]


def to_cnf(formula: Formula) -> List[List[Formula]]:
    """Plain CNF of a boolean combination: a list of disjunctive clauses.

    Dual of :func:`to_dnf`; the input must be in NNF.  ``[]`` means true,
    a clause ``[]`` inside means false.
    """
    formula = simplify(formula)
    if isinstance(formula, TrueF):
        return []
    if isinstance(formula, FalseF):
        return [[]]
    if isinstance(formula, And):
        result: List[List[Formula]] = []
        for child in formula.children:
            result.extend(to_cnf(child))
        return result
    if isinstance(formula, Or):
        partial: List[List[Formula]] = [[]]
        for child in formula.children:
            child_clauses = to_cnf(child)
            partial = [
                existing + extra for existing in partial for extra in child_clauses
            ]
        return partial
    return [[formula]]
