"""First-order query syntax (Section 2.1), plus the *local* extensions the
evaluation pipeline produces.

The core language is standard FO over relational signatures: relation
atoms, equality, boolean connectives, and quantifiers.  Three extensions
make the paper's algorithms expressible as syntax:

* :class:`DistAtom` — ``dist(x, y) <= k`` in the Gaifman graph.  FO can
  define it, but as a primitive it keeps Gaifman localization readable and
  cheap (the paper manipulates distance formulas throughout Section 4).
* :class:`ExistsNear` / :class:`ForallNear` — quantifiers *relativized to
  the r-neighborhood of a tuple of variables*.  A formula whose quantifiers
  are all relativized around its free variables is exactly an "r-local
  formula" (Section 4, Step 1).
* :class:`CountCmp` — ``|U ∩ N_r(x-bar)| op rhs`` for a unary predicate
  ``U``, where ``rhs`` is an integer or ``TotalCount(U)``.  This is how the
  structure-assisted localization expresses the "far existential witness"
  condition: ``exists z far from x-bar with U(z)`` holds iff
  ``|U ∩ N_r(x-bar)| < |U|``.

All nodes are immutable and hashable; free variables are computed once at
construction.  Use the smart constructors :func:`and_`, :func:`or_`,
:func:`not_` for constant folding and flattening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional, Tuple, Union

from repro.errors import QueryError


@dataclass(frozen=True, order=True)
class Var:
    """A first-order variable."""

    name: str

    def __str__(self) -> str:
        return self.name


class Formula:
    """Base class for all formula nodes."""

    free: FrozenSet[Var] = frozenset()

    def __and__(self, other: "Formula") -> "Formula":
        return and_(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return or_(self, other)

    def __invert__(self) -> "Formula":
        return not_(self)


@dataclass(frozen=True)
class TrueF(Formula):
    """The constant true."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    """The constant false."""

    def __str__(self) -> str:
        return "false"


TRUE = TrueF()
FALSE = FalseF()


@dataclass(frozen=True)
class RelAtom(Formula):
    """A relational atom ``R(x1, ..., xr)``."""

    relation: str
    args: Tuple[Var, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "free", frozenset(self.args))

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class Eq(Formula):
    """Equality ``x = y``."""

    left: Var
    right: Var

    def __post_init__(self) -> None:
        object.__setattr__(self, "free", frozenset((self.left, self.right)))

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class DistAtom(Formula):
    """``dist(left, right) <= bound`` (``within=True``) or ``> bound``.

    Distances are in the Gaifman graph of the structure the formula is
    evaluated on.  ``dist <= 0`` is equality; ``dist <= 1`` is "equal or
    adjacent".
    """

    left: Var
    right: Var
    bound: int
    within: bool = True

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise QueryError(f"distance bound must be >= 0, got {self.bound}")
        object.__setattr__(self, "free", frozenset((self.left, self.right)))

    def negated(self) -> "DistAtom":
        return DistAtom(self.left, self.right, self.bound, not self.within)

    def __str__(self) -> str:
        op = "<=" if self.within else ">"
        return f"dist({self.left},{self.right}) {op} {self.bound}"


@dataclass(frozen=True)
class TotalCount:
    """The right-hand side ``|U|`` of a :class:`CountCmp` comparison."""

    unary: str

    def __str__(self) -> str:
        return f"|{self.unary}|"


@dataclass(frozen=True)
class CountCmp(Formula):
    """``|U ∩ N_radius(vars)| op rhs + offset`` for a unary symbol ``U``.

    ``op`` is one of ``<``, ``<=``, ``>``, ``>=``, ``==``.  ``rhs`` is an
    ``int`` or :class:`TotalCount`; ``offset`` shifts the right-hand side
    (it appears when a count over far-apart variable groups is split into
    per-group counts).  With ``radius=r`` this atom is r-local around
    ``vars`` (given the structure-wide constant ``|U|``).
    """

    unary: str
    radius: int
    vars: Tuple[Var, ...]
    op: str
    rhs: Union[int, TotalCount]
    offset: int = 0

    _OPS = ("<", "<=", ">", ">=", "==")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise QueryError(f"bad comparison {self.op!r}; use one of {self._OPS}")
        if self.radius < 0:
            raise QueryError(f"radius must be >= 0, got {self.radius}")
        if not self.vars:
            raise QueryError("CountCmp needs at least one center variable")
        if isinstance(self.rhs, int):
            # Fold the offset into a concrete right-hand side.
            object.__setattr__(self, "rhs", self.rhs + self.offset)
            object.__setattr__(self, "offset", 0)
        object.__setattr__(self, "free", frozenset(self.vars))

    def compare(self, count: int, rhs_value: int) -> bool:
        if self.op == "<":
            return count < rhs_value
        if self.op == "<=":
            return count <= rhs_value
        if self.op == ">":
            return count > rhs_value
        if self.op == ">=":
            return count >= rhs_value
        return count == rhs_value

    def __str__(self) -> str:
        centers = ",".join(str(v) for v in self.vars)
        shift = f" + {self.offset}" if self.offset else ""
        return f"#[{self.unary}, N{self.radius}({centers})] {self.op} {self.rhs}{shift}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    child: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "free", self.child.free)

    def __str__(self) -> str:
        return f"~({self.child})"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction."""

    children: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        free: FrozenSet[Var] = frozenset()
        for child in self.children:
            free |= child.free
        object.__setattr__(self, "free", free)

    def __str__(self) -> str:
        return (
            "("
            + " & ".join(_connective_part(child) for child in self.children)
            + ")"
        )


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction."""

    children: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        free: FrozenSet[Var] = frozenset()
        for child in self.children:
            free |= child.free
        object.__setattr__(self, "free", free)

    def __str__(self) -> str:
        return (
            "("
            + " | ".join(_connective_part(child) for child in self.children)
            + ")"
        )


@dataclass(frozen=True)
class Exists(Formula):
    """Unrelativized existential quantification."""

    var: Var
    child: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "free", self.child.free - {self.var})

    def __str__(self) -> str:
        return f"exists {self.var}. ({self.child})"


@dataclass(frozen=True)
class Forall(Formula):
    """Unrelativized universal quantification."""

    var: Var
    child: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "free", self.child.free - {self.var})

    def __str__(self) -> str:
        return f"forall {self.var}. ({self.child})"


@dataclass(frozen=True)
class ExistsNear(Formula):
    """``exists var in N_radius(centers): child`` — a relativized quantifier.

    The witness ranges over elements at Gaifman distance <= radius from at
    least one center.  Centers must be distinct from the bound variable.
    """

    var: Var
    centers: Tuple[Var, ...]
    radius: int
    child: Formula

    def __post_init__(self) -> None:
        if self.var in self.centers:
            raise QueryError(
                f"bound variable {self.var} cannot be its own center"
            )
        if not self.centers:
            raise QueryError("relativized quantifier needs at least one center")
        if self.radius < 0:
            raise QueryError(f"radius must be >= 0, got {self.radius}")
        free = (self.child.free - {self.var}) | frozenset(self.centers)
        object.__setattr__(self, "free", free)

    def __str__(self) -> str:
        centers = ",".join(str(center) for center in self.centers)
        return f"exists {self.var} in N{self.radius}({centers}). ({self.child})"


@dataclass(frozen=True)
class ForallNear(Formula):
    """``forall var in N_radius(centers): child``."""

    var: Var
    centers: Tuple[Var, ...]
    radius: int
    child: Formula

    def __post_init__(self) -> None:
        if self.var in self.centers:
            raise QueryError(
                f"bound variable {self.var} cannot be its own center"
            )
        if not self.centers:
            raise QueryError("relativized quantifier needs at least one center")
        if self.radius < 0:
            raise QueryError(f"radius must be >= 0, got {self.radius}")
        free = (self.child.free - {self.var}) | frozenset(self.centers)
        object.__setattr__(self, "free", free)

    def __str__(self) -> str:
        centers = ",".join(str(center) for center in self.centers)
        return f"forall {self.var} in N{self.radius}({centers}). ({self.child})"


def _connective_part(child: Formula) -> str:
    """Print one conjunct/disjunct, parenthesized when the grammar needs
    it: a quantifier's body extends maximally to the right, so a
    quantified child inside ``&`` / ``|`` must be wrapped or the re-parse
    would capture the rest of the connective into its scope (the
    ``parse(str(f)) == f`` round-trip contract)."""
    text = str(child)
    if isinstance(child, (Exists, Forall, ExistsNear, ForallNear)):
        return f"({text})"
    return text


# ----------------------------------------------------------------------
# Smart constructors
# ----------------------------------------------------------------------


def and_(*formulas: Formula) -> Formula:
    """Conjunction with flattening, constant folding, and complementary
    literal detection (``f and not f`` is false)."""
    flat = []
    for formula in formulas:
        if isinstance(formula, TrueF):
            continue
        if isinstance(formula, FalseF):
            return FALSE
        if isinstance(formula, And):
            flat.extend(formula.children)
        else:
            flat.append(formula)
    deduped = list(dict.fromkeys(flat))
    present = set(deduped)
    for child in deduped:
        if not_(child) in present:
            return FALSE
    if not deduped:
        return TRUE
    if len(deduped) == 1:
        return deduped[0]
    return And(tuple(deduped))


def or_(*formulas: Formula) -> Formula:
    """Disjunction with flattening, constant folding, and complementary
    literal detection (``f or not f`` is true)."""
    flat = []
    for formula in formulas:
        if isinstance(formula, FalseF):
            continue
        if isinstance(formula, TrueF):
            return TRUE
        if isinstance(formula, Or):
            flat.extend(formula.children)
        else:
            flat.append(formula)
    deduped = list(dict.fromkeys(flat))
    present = set(deduped)
    for child in deduped:
        if not_(child) in present:
            return TRUE
    if not deduped:
        return FALSE
    if len(deduped) == 1:
        return deduped[0]
    return Or(tuple(deduped))


def not_(formula: Formula) -> Formula:
    """Negation with double-negation and constant folding."""
    if isinstance(formula, TrueF):
        return FALSE
    if isinstance(formula, FalseF):
        return TRUE
    if isinstance(formula, Not):
        return formula.child
    if isinstance(formula, DistAtom):
        return formula.negated()
    return Not(formula)


def atom(relation: str, *args: Union[Var, str]) -> RelAtom:
    """Build ``R(x, y, ...)`` accepting strings or Vars."""
    vars_ = tuple(arg if isinstance(arg, Var) else Var(arg) for arg in args)
    return RelAtom(relation, vars_)


def eq(left: Union[Var, str], right: Union[Var, str]) -> Eq:
    left_var = left if isinstance(left, Var) else Var(left)
    right_var = right if isinstance(right, Var) else Var(right)
    return Eq(left_var, right_var)


def exists(var: Union[Var, str], child: Formula) -> Exists:
    return Exists(var if isinstance(var, Var) else Var(var), child)


def forall(var: Union[Var, str], child: Formula) -> Forall:
    return Forall(var if isinstance(var, Var) else Var(var), child)


# ----------------------------------------------------------------------
# Structural queries
# ----------------------------------------------------------------------


def subformulas(formula: Formula) -> Iterator[Formula]:
    """Yield ``formula`` and all its descendants, pre-order."""
    yield formula
    if isinstance(formula, Not):
        yield from subformulas(formula.child)
    elif isinstance(formula, (And, Or)):
        for child in formula.children:
            yield from subformulas(child)
    elif isinstance(formula, (Exists, Forall, ExistsNear, ForallNear)):
        yield from subformulas(formula.child)


def atoms_of(formula: Formula) -> Iterator[Formula]:
    """Yield the atomic subformulas (relational, equality, distance, count)."""
    for node in subformulas(formula):
        if isinstance(node, (RelAtom, Eq, DistAtom, CountCmp)):
            yield node


def is_quantifier_free(formula: Formula) -> bool:
    return not any(
        isinstance(node, (Exists, Forall, ExistsNear, ForallNear))
        for node in subformulas(formula)
    )


def is_local(formula: Formula) -> bool:
    """True iff every quantifier is relativized (the formula is *local*)."""
    return not any(
        isinstance(node, (Exists, Forall)) for node in subformulas(formula)
    )


def quantifier_rank(formula: Formula) -> int:
    """Maximum nesting depth of quantifiers (relativized ones included)."""
    if isinstance(formula, (TrueF, FalseF, RelAtom, Eq, DistAtom, CountCmp)):
        return 0
    if isinstance(formula, Not):
        return quantifier_rank(formula.child)
    if isinstance(formula, (And, Or)):
        return max((quantifier_rank(child) for child in formula.children), default=0)
    if isinstance(formula, (Exists, Forall, ExistsNear, ForallNear)):
        return 1 + quantifier_rank(formula.child)
    raise QueryError(f"unknown formula node {formula!r}")


def locality_radius(formula: Formula) -> int:
    """An upper bound on the locality radius of a *local* formula.

    For a formula whose quantifiers are all relativized, its truth value on
    a tuple ``a-bar`` depends only on the ``r``-neighborhood of ``a-bar``
    where ``r`` is the value computed here: nested relativized quantifiers
    accumulate their radii, and distance/count atoms contribute their
    bounds.
    """
    if isinstance(formula, (TrueF, FalseF, RelAtom)):
        return 0
    if isinstance(formula, Eq):
        return 0
    if isinstance(formula, DistAtom):
        return formula.bound
    if isinstance(formula, CountCmp):
        return formula.radius
    if isinstance(formula, Not):
        return locality_radius(formula.child)
    if isinstance(formula, (And, Or)):
        return max((locality_radius(child) for child in formula.children), default=0)
    if isinstance(formula, (ExistsNear, ForallNear)):
        # A witness within ``radius`` of the centers, whose own constraints
        # reach ``locality_radius(child)`` further out.  Truth on the
        # induced substructure of ``N_{radius + child}(centers)`` is
        # determined because atoms among region members are preserved by
        # induced substructures.
        return formula.radius + locality_radius(formula.child)
    if isinstance(formula, (Exists, Forall)):
        raise QueryError("locality_radius is only defined for local formulas")
    raise QueryError(f"unknown formula node {formula!r}")


def relation_names(formula: Formula) -> FrozenSet[str]:
    """All relation symbols occurring in the formula (including CountCmp's)."""
    names = set()
    for node in subformulas(formula):
        if isinstance(node, RelAtom):
            names.add(node.relation)
        elif isinstance(node, CountCmp):
            names.add(node.unary)
    return frozenset(names)


def substitute(formula: Formula, mapping) -> Formula:
    """Capture-avoiding variable renaming; ``mapping`` is Var -> Var.

    Bound variables are left untouched; mapping a variable that occurs
    bound raises :class:`QueryError` (callers rename apart first).
    """
    if isinstance(formula, (TrueF, FalseF)):
        return formula
    if isinstance(formula, RelAtom):
        return RelAtom(
            formula.relation,
            tuple(mapping.get(arg, arg) for arg in formula.args),
        )
    if isinstance(formula, Eq):
        return Eq(mapping.get(formula.left, formula.left), mapping.get(formula.right, formula.right))
    if isinstance(formula, DistAtom):
        return DistAtom(
            mapping.get(formula.left, formula.left),
            mapping.get(formula.right, formula.right),
            formula.bound,
            formula.within,
        )
    if isinstance(formula, CountCmp):
        return CountCmp(
            formula.unary,
            formula.radius,
            tuple(mapping.get(var, var) for var in formula.vars),
            formula.op,
            formula.rhs,
            formula.offset,
        )
    if isinstance(formula, Not):
        return Not(substitute(formula.child, mapping))
    if isinstance(formula, And):
        return And(tuple(substitute(child, mapping) for child in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(substitute(child, mapping) for child in formula.children))
    if isinstance(formula, (Exists, Forall)):
        if formula.var in mapping:
            raise QueryError(
                f"cannot substitute bound variable {formula.var}; rename apart first"
            )
        cls = type(formula)
        return cls(formula.var, substitute(formula.child, mapping))
    if isinstance(formula, (ExistsNear, ForallNear)):
        if formula.var in mapping:
            raise QueryError(
                f"cannot substitute bound variable {formula.var}; rename apart first"
            )
        cls = type(formula)
        return cls(
            formula.var,
            tuple(mapping.get(center, center) for center in formula.centers),
            formula.radius,
            substitute(formula.child, mapping),
        )
    raise QueryError(f"unknown formula node {formula!r}")


_FRESH_COUNTER = [0]


def fresh_var(prefix: str = "_v") -> Var:
    """A globally fresh variable (used when renaming apart)."""
    _FRESH_COUNTER[0] += 1
    return Var(f"{prefix}{_FRESH_COUNTER[0]}")


def rename_apart(
    formula: Formula, taken: Optional[FrozenSet[Var]] = None
) -> Formula:
    """Rename bound variables so they are pairwise distinct and disjoint
    from ``taken`` and from all free variables."""
    used = set(taken or ()) | set(formula.free)

    def walk(node: Formula, bound_map) -> Formula:
        if isinstance(node, (TrueF, FalseF)):
            return node
        if isinstance(node, RelAtom):
            return RelAtom(node.relation, tuple(bound_map.get(a, a) for a in node.args))
        if isinstance(node, Eq):
            return Eq(bound_map.get(node.left, node.left), bound_map.get(node.right, node.right))
        if isinstance(node, DistAtom):
            return DistAtom(
                bound_map.get(node.left, node.left),
                bound_map.get(node.right, node.right),
                node.bound,
                node.within,
            )
        if isinstance(node, CountCmp):
            return CountCmp(
                node.unary,
                node.radius,
                tuple(bound_map.get(v, v) for v in node.vars),
                node.op,
                node.rhs,
                node.offset,
            )
        if isinstance(node, Not):
            return Not(walk(node.child, bound_map))
        if isinstance(node, And):
            return And(tuple(walk(child, bound_map) for child in node.children))
        if isinstance(node, Or):
            return Or(tuple(walk(child, bound_map) for child in node.children))
        if isinstance(node, (Exists, Forall)):
            new_var = node.var
            if new_var in used:
                new_var = fresh_var(node.var.name + "_")
            used.add(new_var)
            inner_map = dict(bound_map)
            inner_map[node.var] = new_var
            cls = type(node)
            return cls(new_var, walk(node.child, inner_map))
        if isinstance(node, (ExistsNear, ForallNear)):
            new_var = node.var
            if new_var in used:
                new_var = fresh_var(node.var.name + "_")
            used.add(new_var)
            inner_map = dict(bound_map)
            inner_map[node.var] = new_var
            cls = type(node)
            return cls(
                new_var,
                tuple(bound_map.get(c, c) for c in node.centers),
                node.radius,
                walk(node.child, inner_map),
            )
        raise QueryError(f"unknown formula node {node!r}")

    return walk(formula, {})
