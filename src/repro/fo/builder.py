"""A fluent builder for FO queries, as an alternative to the parser.

The parser is the primary interface; the builder exists for programmatic
query construction (loops over relation names, generated conjunctions)
where string interpolation would be error-prone::

    from repro.fo.builder import Q

    x, y, z = Q.vars("x", "y", "z")
    query = Q.B(x) & Q.R(y) & ~Q.E(x, y)                 # Example 2.3
    query = Q.exists(z, Q.E(x, z) & Q.R(z))              # witness query
    query = Q.forall(z, Q.E(x, z) >> Q.B(z))             # guarded forall
    query = Q.B(x) & Q.far(x, y, 2)                      # dist(x,y) > 2
    query = Q.exists_near(z, (x,), 2, Q.R(z))            # relativized

``Q.<Name>(...)`` builds a relational atom for any relation name; the
``>>`` operator on the small wrapper builds implication.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.fo.syntax import (
    DistAtom,
    Eq,
    Exists,
    ExistsNear,
    FALSE,
    Forall,
    ForallNear,
    Formula,
    RelAtom,
    TRUE,
    Var,
    and_,
    not_,
    or_,
)

VarLike = Union[Var, str]


def _var(value: VarLike) -> Var:
    return value if isinstance(value, Var) else Var(value)


class _QMeta(type):
    """``Q.AnyName`` resolves to an atom factory for relation ``AnyName``."""

    def __getattr__(cls, name: str):
        if name.startswith("_"):
            raise AttributeError(name)

        def make_atom(*args: VarLike) -> RelAtom:
            if not args:
                raise TypeError(f"atom {name} needs at least one argument")
            return RelAtom(name, tuple(_var(arg) for arg in args))

        return make_atom


class Q(metaclass=_QMeta):
    """Namespace for fluent query construction (never instantiated)."""

    true: Formula = TRUE
    false: Formula = FALSE

    def __new__(cls, *args, **kwargs):  # pragma: no cover - guard
        raise TypeError("Q is a namespace; use its class methods")

    # NB: names that collide with relation symbols are fine — these
    # explicit methods win, and relation atoms for e.g. "exists" would be
    # unusual anyway.

    @classmethod
    def vars(cls, *names: str) -> Tuple[Var, ...]:
        """``x, y = Q.vars("x", "y")``"""
        return tuple(Var(name) for name in names)

    @classmethod
    def atom(cls, relation: str, *args: VarLike) -> RelAtom:
        """Explicit atom constructor (for dynamic relation names)."""
        return RelAtom(relation, tuple(_var(arg) for arg in args))

    @classmethod
    def eq(cls, left: VarLike, right: VarLike) -> Eq:
        return Eq(_var(left), _var(right))

    @classmethod
    def neq(cls, left: VarLike, right: VarLike) -> Formula:
        return not_(Eq(_var(left), _var(right)))

    @classmethod
    def near(cls, left: VarLike, right: VarLike, bound: int) -> DistAtom:
        """``dist(left, right) <= bound``"""
        return DistAtom(_var(left), _var(right), bound, within=True)

    @classmethod
    def far(cls, left: VarLike, right: VarLike, bound: int) -> DistAtom:
        """``dist(left, right) > bound``"""
        return DistAtom(_var(left), _var(right), bound, within=False)

    @classmethod
    def exists(cls, var: VarLike, body: Formula) -> Exists:
        return Exists(_var(var), body)

    @classmethod
    def forall(cls, var: VarLike, body: Formula) -> Forall:
        return Forall(_var(var), body)

    @classmethod
    def exists_near(
        cls, var: VarLike, centers, radius: int, body: Formula
    ) -> ExistsNear:
        return ExistsNear(
            _var(var), tuple(_var(center) for center in centers), radius, body
        )

    @classmethod
    def forall_near(
        cls, var: VarLike, centers, radius: int, body: Formula
    ) -> ForallNear:
        return ForallNear(
            _var(var), tuple(_var(center) for center in centers), radius, body
        )

    @classmethod
    def all_of(cls, *formulas: Formula) -> Formula:
        return and_(*formulas)

    @classmethod
    def any_of(cls, *formulas: Formula) -> Formula:
        return or_(*formulas)

    @classmethod
    def implies(cls, antecedent: Formula, consequent: Formula) -> Formula:
        return or_(not_(antecedent), consequent)
