"""A small recursive-descent parser for textual FO queries.

Grammar (lowest precedence first)::

    formula    := implied ( "<->" implied )*
    implied    := disjunct ( "->" disjunct )*          (right-associative)
    disjunct   := conjunct ( ("|" | "or") conjunct )*
    conjunct   := unary ( ("&" | "and") unary )*
    unary      := ("~" | "!" | "not") unary
                | ("exists" | "forall") var+ [ "in" "N" INT "(" var+ ")" ] "." formula
                | "(" formula ")"
                | atom
    atom       := NAME "(" var ("," var)* ")"
                | "dist" "(" var "," var ")" ("<=" | ">") INT
                | var ("=" | "!=") var
                | "true" | "false"

Examples::

    parse("B(x) & R(y) & ~E(x,y)")
    parse("exists y. E(x,y) & B(y)")          # body extends to the right
    parse("exists z in N2(x). E(z,x)")        # relativized quantifier
    parse("dist(x,y) > 4 & C(x)")
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Tuple

from repro.errors import ParseError
from repro.fo.syntax import (
    DistAtom,
    Eq,
    Exists,
    ExistsNear,
    FALSE,
    Forall,
    ForallNear,
    Formula,
    RelAtom,
    TRUE,
    Var,
    and_,
    not_,
    or_,
)


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->)
  | (?P<implies>->)
  | (?P<le><=)
  | (?P<neq>!=)
  | (?P<gt>>)
  | (?P<eq>=)
  | (?P<and>&)
  | (?P<or>\|)
  | (?P<not>~|!)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9']*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"exists", "forall", "and", "or", "not", "true", "false", "in", "dist"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at position {position}"
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r} at position {token.position}, got {token.text!r}"
            )
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "name" and token.text == word

    # -- grammar -------------------------------------------------------

    def parse(self) -> Formula:
        formula = self.formula()
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(
                f"trailing input at position {token.position}: {token.text!r}"
            )
        return formula

    def formula(self) -> Formula:
        left = self.implied()
        while self.peek().kind == "iff":
            self.advance()
            right = self.implied()
            left = or_(and_(left, right), and_(not_(left), not_(right)))
        return left

    def implied(self) -> Formula:
        left = self.disjunct()
        if self.peek().kind == "implies":
            self.advance()
            right = self.implied()
            return or_(not_(left), right)
        return left

    def disjunct(self) -> Formula:
        parts = [self.conjunct()]
        while self.peek().kind == "or" or self.at_keyword("or"):
            self.advance()
            parts.append(self.conjunct())
        return or_(*parts)

    def conjunct(self) -> Formula:
        parts = [self.unary()]
        while self.peek().kind == "and" or self.at_keyword("and"):
            self.advance()
            parts.append(self.unary())
        return and_(*parts)

    def unary(self) -> Formula:
        token = self.peek()
        if token.kind == "not" or self.at_keyword("not"):
            self.advance()
            return not_(self.unary())
        if self.at_keyword("exists") or self.at_keyword("forall"):
            return self.quantified()
        if token.kind == "lpar":
            self.advance()
            inner = self.formula()
            self.expect("rpar")
            return inner
        return self.atom()

    def quantified(self) -> Formula:
        keyword = self.advance().text
        variables: List[Var] = []
        while self.peek().kind == "name" and not self.at_keyword("in"):
            if self.peek().text in _KEYWORDS:
                break
            variables.append(Var(self.advance().text))
        if not variables:
            raise ParseError(
                f"{keyword} needs at least one variable at position "
                f"{self.peek().position}"
            )
        relativization: Optional[Tuple[int, Tuple[Var, ...]]] = None
        if self.at_keyword("in"):
            self.advance()
            near = self.expect("name")
            match = re.fullmatch(r"N(\d+)", near.text)
            if match is None:
                raise ParseError(
                    f"expected neighborhood 'N<radius>' at position {near.position}, "
                    f"got {near.text!r}"
                )
            radius = int(match.group(1))
            self.expect("lpar")
            centers = [Var(self.expect("name").text)]
            while self.peek().kind == "comma":
                self.advance()
                centers.append(Var(self.expect("name").text))
            self.expect("rpar")
            relativization = (radius, tuple(centers))
        self.expect("dot")
        body = self.formula()
        for var in reversed(variables):
            if relativization is None:
                body = Exists(var, body) if keyword == "exists" else Forall(var, body)
            else:
                radius, centers = relativization
                cls = ExistsNear if keyword == "exists" else ForallNear
                body = cls(var, centers, radius, body)
        return body

    def atom(self) -> Formula:
        token = self.peek()
        if token.kind != "name":
            raise ParseError(
                f"expected an atom at position {token.position}, got {token.text!r}"
            )
        if token.text == "true":
            self.advance()
            return TRUE
        if token.text == "false":
            self.advance()
            return FALSE
        if token.text == "dist":
            return self.distance_atom()
        name = self.advance().text
        if self.peek().kind == "lpar":
            self.advance()
            args = [Var(self.expect("name").text)]
            while self.peek().kind == "comma":
                self.advance()
                args.append(Var(self.expect("name").text))
            self.expect("rpar")
            return RelAtom(name, tuple(args))
        # A bare name: must be the left side of (in)equality.
        operator = self.peek()
        if operator.kind == "eq":
            self.advance()
            right = Var(self.expect("name").text)
            return Eq(Var(name), right)
        if operator.kind == "neq":
            self.advance()
            right = Var(self.expect("name").text)
            return not_(Eq(Var(name), right))
        raise ParseError(
            f"expected '(' or '='/'!=' after {name!r} at position {operator.position}"
        )

    def distance_atom(self) -> Formula:
        self.expect("name", "dist")
        self.expect("lpar")
        left = Var(self.expect("name").text)
        self.expect("comma")
        right = Var(self.expect("name").text)
        self.expect("rpar")
        operator = self.peek()
        if operator.kind == "le":
            self.advance()
            bound = int(self.expect("int").text)
            return DistAtom(left, right, bound, within=True)
        if operator.kind == "gt":
            self.advance()
            bound = int(self.expect("int").text)
            return DistAtom(left, right, bound, within=False)
        raise ParseError(
            f"expected '<=' or '>' after dist(...) at position {operator.position}"
        )


def parse(text: str) -> Formula:
    """Parse a textual FO query into a :class:`~repro.fo.syntax.Formula`."""
    return _Parser(text).parse()
