"""The parallel batch query engine.

Layers on top of the paper's pipeline (:mod:`repro.core`):

* :mod:`repro.engine.executor` — branch-parallel enumeration *and
  counting* of one pipeline across a thread or process pool, with a
  deterministic merge that reproduces the serial answer order
  byte-for-byte (and, for :func:`parallel_count`, the exact serial
  count);
* :mod:`repro.engine.pool` — :class:`WorkerPool`, the long-lived,
  lazily-started, crash-restarting worker pool each
  :class:`QueryBatch` owns;
* :mod:`repro.engine.cache` — LRU pipeline cache keyed by
  ``(structure fingerprint, normalized formula, order, eps)``;
* :mod:`repro.engine.batch` — :class:`QueryBatch`, sharing one
  structure's preprocessing across many queries, returning
  :class:`ResultHandle` objects with ``.page() / .stream() / .count() /
  .cancel()``;
* :mod:`repro.engine.aio` — :class:`AsyncQueryBatch`, the asyncio
  front-end bridging pool futures to awaitables.

Quick start::

    from repro.engine import QueryBatch

    with QueryBatch(structure, workers=4) as batch:
        handle = batch.submit("B(x) & R(y) & ~E(x,y)")
        first = handle.page(0, size=20)
        total = handle.count()      # parallel per-branch counting
        for answer in handle.stream():
            ...

Async::

    from repro.engine import AsyncQueryBatch

    async with AsyncQueryBatch(structure, workers=4) as batch:
        handle = await batch.submit("B(x) & R(y) & ~E(x,y)")
        total = await handle.count()
        async for answer in handle.stream():
            ...
"""

from repro.engine.aio import AsyncQueryBatch, AsyncResultHandle
from repro.engine.batch import DEFAULT_PAGE_SIZE, QueryBatch, ResultHandle
from repro.engine.cache import PipelineCache, cache_key, normalize_formula
from repro.engine.executor import (
    BranchTask,
    branch_works,
    count_works,
    decide_count_mode,
    decide_mode,
    default_workers,
    parallel_count,
    parallel_enumerate,
    plan_work_units,
    prearm,
    run_branches,
    warm_pool,
)
from repro.engine.pool import WorkerPool

__all__ = [
    "AsyncQueryBatch",
    "AsyncResultHandle",
    "BranchTask",
    "DEFAULT_PAGE_SIZE",
    "PipelineCache",
    "QueryBatch",
    "ResultHandle",
    "WorkerPool",
    "branch_works",
    "cache_key",
    "count_works",
    "decide_count_mode",
    "decide_mode",
    "default_workers",
    "normalize_formula",
    "parallel_count",
    "parallel_enumerate",
    "plan_work_units",
    "prearm",
    "run_branches",
    "warm_pool",
]
