"""The parallel batch engine (execution layer of :mod:`repro.session`).

Layers on top of the paper's pipeline (:mod:`repro.core`):

* :mod:`repro.engine.executor` — branch-parallel enumeration *and
  counting* of one pipeline across a thread or process pool, with a
  deterministic merge that reproduces the serial answer order
  byte-for-byte (and, for :func:`parallel_count`, the exact serial
  count);
* :mod:`repro.engine.pool` — :class:`WorkerPool`, the long-lived,
  lazily-started, crash-restarting worker pool each
  :class:`repro.session.Database` owns;
* :mod:`repro.engine.cache` — LRU pipeline cache keyed by
  ``(structure fingerprint, normalized formula, order, eps)``, with
  targeted re-keying for dynamically maintained plans;
* :mod:`repro.engine.batch` — :class:`QueryBatch` / :class:`ResultHandle`,
  the deprecated batch facade (thin shims over the session layer);
* :mod:`repro.engine.aio` — :class:`AsyncQueryBatch`, the deprecated
  asyncio facade (the unified :class:`repro.session.Answers` handle is
  awaitable directly).

Preferred front-end::

    from repro.session import Database

    with Database(structure, workers=4) as db:
        answers = db.query("B(x) & R(y) & ~E(x,y)").answers()
        first = answers.page(0, size=20)
        total = answers.count()     # parallel per-branch counting
        for answer in answers:
            ...

Exports resolve lazily: the deprecated facades warn at use, not at
``import repro.engine``, and the module plays no part in import cycles
with the session layer it now sits under.
"""

_EXPORTS = {
    "AsyncQueryBatch": ("repro.engine.aio", "AsyncQueryBatch"),
    "AsyncResultHandle": ("repro.engine.aio", "AsyncResultHandle"),
    "BranchTask": ("repro.engine.executor", "BranchTask"),
    "ColumnarCodec": ("repro.engine.transport", "ColumnarCodec"),
    "DEFAULT_PAGE_SIZE": ("repro.engine.batch", "DEFAULT_PAGE_SIZE"),
    "InternTable": ("repro.engine.transport", "InternTable"),
    "PipelineCache": ("repro.engine.cache", "PipelineCache"),
    "QueryBatch": ("repro.engine.batch", "QueryBatch"),
    "ResultHandle": ("repro.engine.batch", "ResultHandle"),
    "TransferStats": ("repro.engine.transport", "TransferStats"),
    "WorkerPool": ("repro.engine.pool", "WorkerPool"),
    "branch_works": ("repro.engine.executor", "branch_works"),
    "cache_key": ("repro.engine.cache", "cache_key"),
    "count_works": ("repro.engine.executor", "count_works"),
    "decide_count_mode": ("repro.engine.executor", "decide_count_mode"),
    "decide_mode": ("repro.engine.executor", "decide_mode"),
    "default_workers": ("repro.engine.executor", "default_workers"),
    "normalize_formula": ("repro.engine.cache", "normalize_formula"),
    "parallel_count": ("repro.engine.executor", "parallel_count"),
    "parallel_enumerate": ("repro.engine.executor", "parallel_enumerate"),
    "plan_work_units": ("repro.engine.executor", "plan_work_units"),
    "prearm": ("repro.engine.executor", "prearm"),
    "resolve_chunk_rows": ("repro.engine.executor", "resolve_chunk_rows"),
    "run_branches": ("repro.engine.executor", "run_branches"),
    "transfer_works": ("repro.engine.executor", "transfer_works"),
    "warm_pool": ("repro.engine.executor", "warm_pool"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(
            f"module 'repro.engine' has no attribute {name!r}"
        )
    import importlib

    module_name, attribute = target
    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: resolve each name once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
