"""The parallel batch query engine.

Layers on top of the paper's pipeline (:mod:`repro.core`):

* :mod:`repro.engine.executor` — branch-parallel enumeration of one
  pipeline across a thread or process pool, with a deterministic merge
  that reproduces the serial answer order byte-for-byte;
* :mod:`repro.engine.cache` — LRU pipeline cache keyed by
  ``(structure fingerprint, normalized formula, order, eps)``;
* :mod:`repro.engine.batch` — :class:`QueryBatch`, sharing one
  structure's preprocessing across many queries, returning
  :class:`ResultHandle` objects with ``.page() / .stream() / .cancel()``.

Quick start::

    from repro.engine import QueryBatch

    batch = QueryBatch(structure, workers=4)
    handle = batch.submit("B(x) & R(y) & ~E(x,y)")
    first = handle.page(0, size=20)
    for answer in handle.stream():
        ...
"""

from repro.engine.batch import DEFAULT_PAGE_SIZE, QueryBatch, ResultHandle
from repro.engine.cache import PipelineCache, cache_key, normalize_formula
from repro.engine.executor import (
    BranchTask,
    branch_works,
    decide_mode,
    default_workers,
    parallel_enumerate,
    plan_work_units,
    prearm,
    run_branches,
    warm_pool,
)

__all__ = [
    "BranchTask",
    "DEFAULT_PAGE_SIZE",
    "PipelineCache",
    "QueryBatch",
    "ResultHandle",
    "branch_works",
    "cache_key",
    "decide_mode",
    "default_workers",
    "normalize_formula",
    "parallel_enumerate",
    "plan_work_units",
    "prearm",
    "run_branches",
    "warm_pool",
]
