"""A long-lived worker pool owned by the batch engine.

:class:`WorkerPool` fronts one :class:`~concurrent.futures.ThreadPoolExecutor`
and one :class:`~concurrent.futures.ProcessPoolExecutor` behind a single
``submit(mode, fn, *args)`` facade, with the lifecycle a long-running
service needs:

* **lazy start** — no OS resource exists until the first parallel
  submission; serial queries never pay for a pool;
* **warm reuse** — once started, the same executors serve every
  subsequent submission, so per-process pipeline memos
  (:mod:`repro.engine.executor`) amortize across queries;
* **crash restart** — a killed or segfaulted worker process breaks a
  :class:`ProcessPoolExecutor` permanently; the pool detects the broken
  executor at the next submission, tears it down, and starts a fresh one,
  so one lost worker costs one failed (retryable) result instead of the
  whole service;
* **explicit shutdown** — idempotent :meth:`close` (also via the context
  manager protocol) joins every worker thread and process, so tests can
  assert no leaks.

The pool is thread-safe: submissions may arrive concurrently from result
handles, the asyncio front-end's worker threads, and user code.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Callable, Dict, Optional

from repro.errors import EngineError

POOL_MODES = ("thread", "process")


def default_workers() -> int:
    """Worker count when the caller does not choose: one per core."""
    return os.cpu_count() or 1


class WorkerPool:
    """Lazily-started, restartable thread + process pools, one facade."""

    def __init__(self, workers: Optional[int] = None):
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self._requested_workers = workers
        self._thread: Optional[ThreadPoolExecutor] = None
        self._process: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._closed = False
        self._submits = 0
        self._restarts = 0
        self._bytes_received = 0

    # -- introspection -------------------------------------------------

    @property
    def workers(self) -> int:
        return self._requested_workers or default_workers()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def restarts(self) -> int:
        """How many broken process pools were replaced so far."""
        return self._restarts

    @property
    def bytes_received(self) -> int:
        """Transport bytes the parent pulled off this pool's futures."""
        return self._bytes_received

    def record_transfer(self, nbytes: int) -> None:
        """Account one received transport chunk (columnar process mode)."""
        with self._lock:
            self._bytes_received += nbytes

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "workers": self.workers,
                "submits": self._submits,
                "restarts": self._restarts,
                "bytes_received": self._bytes_received,
                "thread_pool_live": int(self._thread is not None),
                "process_pool_live": int(self._process is not None),
                "closed": int(self._closed),
            }

    # -- executors (lazy) ----------------------------------------------

    def _ensure_thread(self) -> ThreadPoolExecutor:
        if self._thread is None:
            self._thread = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-pool"
            )
        return self._thread

    def _ensure_process(self) -> ProcessPoolExecutor:
        if self._process is None:
            self._process = ProcessPoolExecutor(max_workers=self.workers)
        return self._process

    def executor_for(self, mode: str):
        """The live executor for ``mode``, starting it if necessary.

        For warming only (e.g. :func:`repro.engine.executor.warm_pool`);
        regular work should go through :meth:`submit`, which adds the
        broken-pool restart.
        """
        with self._lock:
            self._check_open()
            if mode == "thread":
                return self._ensure_thread()
            if mode == "process":
                return self._ensure_process()
        raise EngineError(
            f"unknown pool mode {mode!r}; choose from {POOL_MODES}"
        )

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this worker pool is closed")

    # -- submission ----------------------------------------------------

    def submit(self, mode: str, fn: Callable, /, *args) -> Future:
        """Schedule ``fn(*args)`` on the ``mode`` executor.

        A broken process executor (a worker died since the last
        submission) is replaced transparently: already-issued futures from
        the dead pool fail with ``BrokenProcessPool`` — retrying their
        originating operation re-submits here and lands on the fresh pool.
        """
        if mode not in POOL_MODES:
            raise EngineError(
                f"unknown pool mode {mode!r}; choose from {POOL_MODES}"
            )
        with self._lock:
            self._check_open()
            self._submits += 1
            if mode == "thread":
                return self._ensure_thread().submit(fn, *args)
            try:
                return self._ensure_process().submit(fn, *args)
            except BrokenExecutor:
                self._restart_process_locked()
                return self._ensure_process().submit(fn, *args)

    def _restart_process_locked(self) -> None:
        broken, self._process = self._process, None
        self._restarts += 1
        if broken is not None:
            # The executor is already broken; don't wait on dead workers.
            broken.shutdown(wait=False, cancel_futures=True)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut down both executors, joining every worker.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread, self._thread = self._thread, None
            process, self._process = self._process, None
        if thread is not None:
            thread.shutdown(wait=True, cancel_futures=True)
        if process is not None:
            process.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"WorkerPool(workers={self.workers}, {state})"
