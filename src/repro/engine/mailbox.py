"""Shared-memory chunk mailbox: true streaming worker->parent transfer.

The columnar transport (:mod:`repro.engine.transport`) bounded the
*decode* — the parent unpacks one chunk at a time — but not the
*transfer*: a work unit's encoded chunks ride one future, so every chunk
of a shard arrives at once when the worker finishes.  This module closes
that gap.  Each process-mode work unit gets one single-producer /
single-consumer ring over :mod:`multiprocessing.shared_memory`:

* the worker appends encoded columnar buffers as it enumerates, blocking
  (with an abandon check) when the ring is full — backpressure, not
  unbounded buffering;
* the parent polls records out in order while the worker is still
  enumerating, so the first page of a heavy shard streams long before
  the shard's future resolves.

Layout of a segment (``HEADER_BYTES`` header, then ``capacity`` data
bytes used as a byte ring):

====== ===== ==========================================================
offset size  field
====== ===== ==========================================================
0      8     ``head`` — total bytes ever written (producer-owned)
8      8     ``tail`` — total bytes ever read (consumer-owned)
16     1     ``done`` — producer wrote its last record and left
17     1     ``abandoned`` — consumer is gone; producer should stop
====== ===== ==========================================================

Records are ``[u32 length | flags][payload]`` with byte-granular wrap
(a record may straddle the ring boundary; reads/writes are two-slice
copies).  Payloads larger than half the ring are split into fragment
records (``_FRAGMENT`` flag = more fragments follow) so any chunk fits
any ring while the consumer keeps draining.

Publication order is write-payload-then-advance-``head`` (and the
``done`` flag is set only after the final ``head`` advance), so a
consumer that observes ``head`` — or ``done`` — sees every byte written
before it.  That relies on total-store-order visibility (x86) or the
interpreter's internal barriers; the protocol additionally never trusts
lengths beyond sanity bounds, so a reordered torn read fails loudly
instead of silently.

Everything degrades gracefully: if shared memory is unavailable (no
``/dev/shm``, permissions) the executor keeps the legacy
chunks-on-the-future path, and a worker that cannot attach a ring
returns its chunk list on the future exactly as before.
"""

from __future__ import annotations

import os
import struct
import time
from typing import Iterator, List, Optional

from repro.errors import EngineError

try:  # pragma: no cover - exercised by environments without _posixshmem
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

HEADER_BYTES = 64
DEFAULT_CAPACITY = 1 << 20
MIN_CAPACITY = 4096

_COUNTER = struct.Struct("<Q")
_RECORD = struct.Struct("<I")
_HEAD_OFF = 0
_TAIL_OFF = 8
_DONE_OFF = 16
_ABANDONED_OFF = 17

# Record length field: low 31 bits = payload length, high bit = "this is
# a fragment; more fragments of the same chunk follow".
_FRAGMENT = 1 << 31
_LENGTH_MASK = _FRAGMENT - 1

# Producer-side wait ladder while the ring is full (seconds).
_POLL_MIN = 0.0002
_POLL_MAX = 0.002


class MailboxAbandoned(EngineError):
    """The consumer abandoned the mailbox; the producer should stop."""


def mailbox_available() -> bool:
    """True when shared-memory mailboxes can actually be created here.

    Checked once per process: imports can succeed on platforms where
    ``shm_open`` is still denied (sealed containers), so the probe
    creates and unlinks a minimal segment.  ``REPRO_MAILBOX=0`` forces
    the legacy future path; ``REPRO_MAILBOX=1`` re-probes every call
    (used by tests to exercise the fallback toggles).
    """
    override = os.environ.get("REPRO_MAILBOX")
    if override == "0":
        return False
    global _AVAILABLE
    if _AVAILABLE is None or override == "1":
        if shared_memory is None:
            _AVAILABLE = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except Exception:
                _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: Optional[bool] = None


def mailbox_capacity(chunk_bytes_hint: int) -> int:
    """Ring size for chunks of roughly ``chunk_bytes_hint`` bytes.

    A handful of chunks of headroom keeps the producer streaming ahead
    of the consumer without buffering the whole shard; the fragment
    protocol makes any capacity *correct*, this only tunes overlap.
    """
    return max(MIN_CAPACITY, min(8 * max(chunk_bytes_hint, 1), DEFAULT_CAPACITY))


class ChunkMailbox:
    """One SPSC byte ring in a shared-memory segment.

    The parent creates (``create=True``) and eventually unlinks; the
    worker attaches by name.  Exactly one producer (:meth:`put` /
    :meth:`finish`) and one consumer (:meth:`poll` / :meth:`abandon`)
    may use an instance.
    """

    def __init__(self, name: Optional[str] = None, capacity: int = DEFAULT_CAPACITY,
                 create: bool = False):
        if shared_memory is None:
            raise EngineError("multiprocessing.shared_memory is unavailable")
        if capacity < MIN_CAPACITY:
            capacity = MIN_CAPACITY
        self.capacity = capacity
        if create:
            self._shm = shared_memory.SharedMemory(
                create=True, size=HEADER_BYTES + capacity
            )
            self._shm.buf[:HEADER_BYTES] = bytes(HEADER_BYTES)
            self._owner = True
        else:
            if name is None:
                raise EngineError("attaching a mailbox requires its name")
            # Attach WITHOUT registering with the resource tracker:
            # ownership (and unlink) stays with the creator.  Registering
            # here would either double-book the name on a fork-shared
            # tracker (unregister noise at unlink) or schedule a spurious
            # unlink-at-worker-exit under spawn.  Python 3.13 exposes
            # ``track=False`` for exactly this; until then the register
            # hook is stubbed around the attach (workers run our tasks
            # single-threaded, so the window is private).
            register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                self._shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = register
            self._owner = False
        self._buf = self._shm.buf
        self._max_fragment = capacity // 2
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    # -- header fields -------------------------------------------------

    def _read_counter(self, offset: int) -> int:
        return _COUNTER.unpack_from(self._buf, offset)[0]

    def _write_counter(self, offset: int, value: int) -> None:
        _COUNTER.pack_into(self._buf, offset, value)

    @property
    def done(self) -> bool:
        return self._buf[_DONE_OFF] != 0

    @property
    def abandoned(self) -> bool:
        return self._buf[_ABANDONED_OFF] != 0

    def abandon(self) -> None:
        """Consumer-side: tell the producer to stop (unblocks its waits)."""
        if not self._closed:
            self._buf[_ABANDONED_OFF] = 1

    def finish(self) -> None:
        """Producer-side: no more records will be written."""
        self._buf[_DONE_OFF] = 1

    # -- byte ring -----------------------------------------------------

    def _copy_in(self, position: int, payload) -> None:
        start = position % self.capacity
        end = start + len(payload)
        base = HEADER_BYTES
        if end <= self.capacity:
            self._buf[base + start : base + end] = payload
        else:
            split = self.capacity - start
            self._buf[base + start : base + self.capacity] = payload[:split]
            self._buf[base : base + end - self.capacity] = payload[split:]

    def _copy_out(self, position: int, length: int) -> bytes:
        start = position % self.capacity
        end = start + length
        base = HEADER_BYTES
        if end <= self.capacity:
            return bytes(self._buf[base + start : base + end])
        split = self.capacity - start
        return bytes(self._buf[base + start : base + self.capacity]) + bytes(
            self._buf[base : base + end - self.capacity]
        )

    # -- producer ------------------------------------------------------

    def _wait_for_space(self, need: int) -> int:
        head = self._read_counter(_HEAD_OFF)
        delay = _POLL_MIN
        while True:
            if self.abandoned:
                raise MailboxAbandoned("consumer abandoned the mailbox")
            tail = self._read_counter(_TAIL_OFF)
            if self.capacity - (head - tail) >= need:
                return head
            time.sleep(delay)
            delay = min(delay * 2, _POLL_MAX)

    def _put_record(self, fragment, more: bool) -> None:
        need = _RECORD.size + len(fragment)
        head = self._wait_for_space(need)
        length = len(fragment) | (_FRAGMENT if more else 0)
        self._copy_in(head, _RECORD.pack(length))
        self._copy_in(head + _RECORD.size, fragment)
        # Publish last: a consumer that sees the new head sees the bytes.
        self._write_counter(_HEAD_OFF, head + need)

    def put(self, payload: bytes) -> None:
        """Append one chunk, blocking while the ring is full.

        Raises :class:`MailboxAbandoned` when the consumer abandoned the
        ring (e.g. the query was cancelled) — the producer should stop
        enumerating.
        """
        view = memoryview(payload)
        total = len(view)
        offset = 0
        while True:
            fragment = view[offset : offset + self._max_fragment]
            offset += len(fragment)
            self._put_record(fragment, more=offset < total)
            if offset >= total:
                return

    # -- consumer ------------------------------------------------------

    def poll(self) -> Optional[bytes]:
        """One complete chunk if available right now, else ``None``.

        Reassembles fragment records; blocks only while the *remaining*
        fragments of an already-started chunk are in flight (they follow
        immediately — the producer writes a chunk's fragments back to
        back).
        """
        parts: List[bytes] = []
        while True:
            record = self._poll_record(wait_for_more=bool(parts))
            if record is None:
                return None
            fragment, more = record
            parts.append(fragment)
            if not more:
                return parts[0] if len(parts) == 1 else b"".join(parts)

    def _poll_record(self, wait_for_more: bool):
        tail = self._read_counter(_TAIL_OFF)
        delay = _POLL_MIN
        while True:
            head = self._read_counter(_HEAD_OFF)
            available = head - tail
            if available >= _RECORD.size:
                (length,) = _RECORD.unpack(self._copy_out(tail, _RECORD.size))
                more = bool(length & _FRAGMENT)
                size = length & _LENGTH_MASK
                if size > self.capacity - _RECORD.size:
                    raise EngineError(
                        f"corrupt mailbox record: length {size} exceeds "
                        f"ring capacity {self.capacity}"
                    )
                if available >= _RECORD.size + size:
                    payload = self._copy_out(tail + _RECORD.size, size)
                    self._write_counter(_TAIL_OFF, tail + _RECORD.size + size)
                    return payload, more
            if not wait_for_more:
                return None
            # Mid-chunk: the producer is writing the next fragment now
            # (or died — its future surfaces the error; cap the wait so
            # a dead producer cannot hang the drain forever).
            if self.done and head == self._read_counter(_HEAD_OFF):
                raise EngineError("mailbox closed mid-chunk (truncated fragments)")
            time.sleep(delay)
            delay = min(delay * 2, _POLL_MAX)

    def drain(self) -> Iterator[bytes]:
        """Yield every remaining complete chunk without waiting for more."""
        while True:
            chunk = self.poll()
            if chunk is None:
                return
            yield chunk

    # -- lifecycle -----------------------------------------------------

    def close(self, unlink: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        self._buf = None  # release the exported memoryview before close()
        self._shm.close()
        if unlink and self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __repr__(self) -> str:
        return (
            f"ChunkMailbox(name={self._shm.name!r}, capacity={self.capacity}, "
            f"owner={self._owner})"
        )
