"""Columnar answer transport for the process backend.

Process-mode enumeration used to materialize each shard's answers as a
Python list of tuples and pickle the entire list back to the parent; on
large result sets that transfer dominated the enumeration the paper made
cheap.  This module replaces the pickled tuple lists with a *columnar*
codec over interned element ids:

* :class:`InternTable` maps every domain element to a dense integer id
  (domain order, built once at pipeline build time and shipped with
  :meth:`repro.core.pipeline.Pipeline.rebuild_spec`), so answers cross
  the process boundary as integers regardless of what the domain
  elements are (ints, strings, tuples, ...);
* :class:`ColumnarCodec` packs a chunk of answer rows arity-column-wise
  into contiguous fixed-width integer buffers.  Each column stores its
  minimum id and the byte width of the *span* — a column whose chunk is
  constant (the outermost variable of a contiguous slice often is) costs
  zero bytes per row — and the packed buffer is zlib-compressed when
  that wins;
* chunks are bounded by the ``chunk_rows`` knob
  (:func:`repro.storage.cost_model.default_chunk_rows` sizes the
  default), so the parent decodes lazily chunk by chunk instead of
  unpickling a whole shard before serving the first page.

Thread and serial modes never touch the codec: in-process answers stay
zero-copy.
"""

from __future__ import annotations

import struct
import sys
import time
import zlib
from array import array
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import EngineError

Element = Hashable
Answer = Tuple[Element, ...]

TRANSPORTS = ("columnar", "pickle")

_FLAG_RAW = 0
_FLAG_ZLIB = 1

# Compressing tiny chunks costs more than the bytes it saves.
_COMPRESS_THRESHOLD = 256

_HEADER = struct.Struct("<II")  # rows, arity
_COLUMN = struct.Struct("<BQ")  # offset byte width (0/1/2/4/8), minimum id

_TYPECODES = {1: "B", 2: "H", 4: "I", 8: "Q"}


def width_for(span: int) -> int:
    """The narrowest fixed byte width representing ids in ``[0, span]``."""
    if span < 0:
        raise EngineError(f"id span must be non-negative, got {span}")
    for width in (1, 2, 4, 8):
        if span < (1 << (8 * width)):
            return width
    raise EngineError(f"id span {span} exceeds 64-bit columns")


def resolve_transport(transport) -> str:
    """Validate a transport name (``None`` means the columnar default)."""
    if transport is None:
        return "columnar"
    if transport not in TRANSPORTS:
        raise EngineError(
            f"unknown transport {transport!r}; choose from {TRANSPORTS}"
        )
    return transport


class InternTable:
    """Dense integer ids for a structure's domain, in domain order.

    Both sides of the process boundary hold the same table (the worker's
    copy travels inside the pipeline rebuild spec), so an answer element
    is shipped as its id and looked back up parent-side in O(1).
    """

    __slots__ = ("elements", "_ids")

    def __init__(self, elements: Iterable[Element]):
        self.elements: List[Element] = list(elements)
        self._ids = {element: i for i, element in enumerate(self.elements)}

    def __len__(self) -> int:
        return len(self.elements)

    def id_of(self, element: Element) -> int:
        return self._ids[element]

    def element(self, ident: int) -> Element:
        return self.elements[ident]

    def id_width(self) -> int:
        """Bytes per id when offsets are not narrowed (the upper bound)."""
        return width_for(max(len(self.elements) - 1, 0))

    def __reduce__(self):
        # Pickle only the element list; the id map is rebuilt on load
        # (halves the shipped table, and the dict is derived state).
        return (InternTable, (self.elements,))

    def __repr__(self) -> str:
        return f"InternTable({len(self.elements)} elements)"


class TransferStats:
    """Parent-side accounting of one consumer's received transport chunks.

    Besides the totals, chunks are attributed to *sources* — work-unit
    labels like ``"b3[0:512]"`` or shard labels like ``"shard1"`` — with
    first/last-arrival timestamps (``time.monotonic``), and
    :meth:`note_done` records when each source *finished producing*
    (worker-side enumeration end for mailbox units, parent-side drain
    end otherwise).  ``first_chunk_at < done_at`` for a source is the
    observable signature of true streaming transfer: the first page
    arrived while that unit was still enumerating.
    """

    __slots__ = (
        "chunks",
        "bytes_received",
        "rows",
        "first_chunk_at",
        "last_chunk_at",
        "per_source",
    )

    def __init__(self) -> None:
        self.chunks = 0
        self.bytes_received = 0
        self.rows = 0
        self.first_chunk_at: Optional[float] = None
        self.last_chunk_at: Optional[float] = None
        # source label -> {chunks, bytes, rows, first_at, last_at, done_at}
        self.per_source: Dict[str, dict] = {}

    def _source_entry(self, source: str) -> dict:
        entry = self.per_source.get(source)
        if entry is None:
            entry = {
                "chunks": 0,
                "bytes": 0,
                "rows": 0,
                "first_at": None,
                "last_at": None,
                "done_at": None,
            }
            self.per_source[source] = entry
        return entry

    def record(self, nbytes: int, rows: int, source: Optional[str] = None) -> None:
        now = time.monotonic()
        self.chunks += 1
        self.bytes_received += nbytes
        self.rows += rows
        if self.first_chunk_at is None:
            self.first_chunk_at = now
        self.last_chunk_at = now
        if source is not None:
            entry = self._source_entry(source)
            entry["chunks"] += 1
            entry["bytes"] += nbytes
            entry["rows"] += rows
            if entry["first_at"] is None:
                entry["first_at"] = now
            entry["last_at"] = now

    def note_done(self, source: str, at: Optional[float] = None) -> None:
        """Record when ``source`` finished producing its stream.

        ``at`` lets mailbox drains pass the *worker's* enumeration-end
        timestamp (``time.monotonic`` is system-wide on the platforms
        the process backend runs on); default is now, parent-side.
        """
        self._source_entry(source)["done_at"] = (
            time.monotonic() if at is None else at
        )

    def as_dict(self) -> dict:
        return {
            "chunks": self.chunks,
            "bytes_received": self.bytes_received,
            "rows": self.rows,
            "first_chunk_at": self.first_chunk_at,
            "last_chunk_at": self.last_chunk_at,
            "sources": {
                source: dict(entry) for source, entry in self.per_source.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"TransferStats(chunks={self.chunks}, "
            f"bytes={self.bytes_received}, rows={self.rows}, "
            f"sources={len(self.per_source)})"
        )


class ColumnarCodec:
    """Encode answer chunks as contiguous per-column id buffers."""

    name = "columnar"

    __slots__ = ("intern",)

    def __init__(self, intern: InternTable):
        self.intern = intern

    # -- worker side ---------------------------------------------------

    def encode(self, rows: Sequence[Answer]) -> bytes:
        """One chunk of answer rows -> one transferable byte buffer."""
        ids = self.intern._ids
        count = len(rows)
        arity = len(rows[0]) if count else 0
        parts = [_HEADER.pack(count, arity)]
        for column in range(arity):
            ordinals = [ids[row[column]] for row in rows]
            low = min(ordinals)
            span = max(ordinals) - low
            width = 0 if span == 0 else width_for(span)
            parts.append(_COLUMN.pack(width, low))
            if width:
                packed = array(_TYPECODES[width], [v - low for v in ordinals])
                if sys.byteorder != "little":  # pragma: no cover
                    packed.byteswap()
                parts.append(packed.tobytes())
        raw = b"".join(parts)
        if len(raw) >= _COMPRESS_THRESHOLD:
            squeezed = zlib.compress(raw, 1)
            if len(squeezed) + 1 < len(raw):
                return bytes((_FLAG_ZLIB,)) + squeezed
        return bytes((_FLAG_RAW,)) + raw

    # -- parent side ---------------------------------------------------

    def decode(self, buf: bytes) -> List[Answer]:
        """One received buffer -> the chunk's answer rows, in order."""
        flag = buf[0]
        payload: bytes = bytes(memoryview(buf)[1:])
        if flag == _FLAG_ZLIB:
            payload = zlib.decompress(payload)
        elif flag != _FLAG_RAW:
            raise EngineError(f"unknown transport chunk flag {flag}")
        count, arity = _HEADER.unpack_from(payload, 0)
        offset = _HEADER.size
        if arity == 0:
            return [() for _ in range(count)]
        elements = self.intern.elements
        columns: List[List[Element]] = []
        for _ in range(arity):
            width, low = _COLUMN.unpack_from(payload, offset)
            offset += _COLUMN.size
            if width == 0:
                columns.append([elements[low]] * count)
                continue
            packed = array(_TYPECODES[width])
            packed.frombytes(payload[offset : offset + count * width])
            if sys.byteorder != "little":  # pragma: no cover
                packed.byteswap()
            offset += count * width
            columns.append([elements[low + v] for v in packed])
        return list(zip(*columns))

    def __repr__(self) -> str:
        return f"ColumnarCodec(intern={self.intern!r})"


def encode_answers(
    answers: Iterable[Answer], codec: ColumnarCodec, chunk_rows: int
) -> List[bytes]:
    """Encode an answer stream into bounded columnar chunks.

    The worker-side half of the transport: at most ``chunk_rows`` rows
    land in each buffer, so the parent can decode (and serve) the first
    page without touching the rest.
    """
    if chunk_rows < 1:
        raise EngineError(f"chunk_rows must be >= 1, got {chunk_rows}")
    chunks: List[bytes] = []
    buffer: List[Answer] = []
    for answer in answers:
        buffer.append(answer)
        if len(buffer) >= chunk_rows:
            chunks.append(codec.encode(buffer))
            buffer = []
    if buffer:
        chunks.append(codec.encode(buffer))
    return chunks


def estimate_encoded_bytes(rows: int, arity: int, id_width: int, chunk_rows: int) -> int:
    """Upper-bound estimate of the columnar bytes for ``rows`` answers.

    Ignores offset narrowing and compression (both only shrink chunks),
    so :meth:`repro.session.Query.explain` reports a conservative bound.
    """
    if rows <= 0 or arity <= 0:
        return 0
    chunks = -(-rows // max(chunk_rows, 1))
    per_chunk_overhead = 1 + _HEADER.size + arity * _COLUMN.size
    return rows * arity * id_width + chunks * per_chunk_overhead
