"""Asyncio front-end over the batch engine.

:class:`AsyncQueryBatch` lets an event-loop application (an API server,
a notebook) drive :class:`repro.engine.batch.QueryBatch` without blocking
the loop: every blocking stage — pipeline preparation, branch pulls,
counting — runs on a worker thread, and the underlying thread/process
fan-out still happens in the batch's own long-lived
:class:`~repro.engine.pool.WorkerPool`.

Semantics carried over from the synchronous engine:

* answers arrive in the exact serial enumeration order;
* ``await``-ing a handle whose structure has mutated raises
  :class:`repro.errors.StaleResultError`;
* a cancelled handle raises :class:`repro.errors.CancelledResultError`.

Cancellation propagates *into* the engine: when the task awaiting a pull
is cancelled (or a stream is abandoned), the wrapped
:meth:`ResultHandle.cancel` runs as soon as the in-flight pull retires,
which closes the branch generator and cancels its pending pool futures —
the pool slots are released instead of computing unread answers.

Quick start::

    async with AsyncQueryBatch(structure, workers=4) as batch:
        handle = await batch.submit("B(x) & R(y) & ~E(x,y)")
        total = await handle.count()
        async for answer in handle.stream():
            ...
"""

from __future__ import annotations

import asyncio
import threading
from typing import AsyncIterator, Hashable, List, Optional, Sequence, Tuple, Union

from repro.engine.batch import DEFAULT_PAGE_SIZE, QueryBatch, ResultHandle
from repro.fo.syntax import Formula, Var
from repro.structures.structure import Structure

Element = Hashable
Answer = Tuple[Element, ...]


class AsyncResultHandle:
    """Awaitable facade over one :class:`ResultHandle`.

    Access is serialized by an :class:`asyncio.Lock` — the synchronous
    handle's pull path is not re-entrant, and one query's answers arrive
    in one order anyway.  Concurrency across *different* handles is the
    intended scaling axis.
    """

    def __init__(self, handle: ResultHandle):
        self._handle = handle
        self._lock = asyncio.Lock()
        # Cancellation must never run concurrently with a pull: the
        # handle's generator cannot be closed while executing.  A pull in
        # flight on a worker thread is tracked under this mutex; a cancel
        # that arrives meanwhile is deferred to the pull's retirement.
        self._sync = threading.Lock()
        self._pull_active = False
        self._cancel_requested = False

    @property
    def inner(self) -> ResultHandle:
        return self._handle

    @property
    def cancelled(self) -> bool:
        return self._handle.cancelled

    @property
    def stale(self) -> bool:
        return self._handle.stale

    async def _call(self, fn, *args):
        async with self._lock:
            loop = asyncio.get_running_loop()
            with self._sync:
                self._pull_active = True
            future = loop.run_in_executor(None, self._pull_wrapper, fn, args)
            try:
                # shield: a task cancellation must not cancel the inner
                # future — the wrapper is guaranteed to run (and retire
                # the pull) even if it was still queued when cancelled.
                return await asyncio.shield(future)
            except asyncio.CancelledError:
                # The worker thread cannot be interrupted mid-pull;
                # request cancellation — it lands the moment the
                # in-flight pull retires, releasing its pool futures.
                self._cancel_quietly()
                # The abandoned pull's outcome is intentionally unread.
                future.add_done_callback(
                    lambda f: f.exception() if not f.cancelled() else None
                )
                raise

    def _pull_wrapper(self, fn, args):
        """Run one blocking pull; honor a cancel deferred while it ran."""
        try:
            return fn(*args)
        finally:
            with self._sync:
                self._pull_active = False
                requested = self._cancel_requested
            if requested:
                self._do_cancel()

    def _cancel_quietly(self) -> None:
        """Cancel now, or defer until the in-flight pull retires."""
        with self._sync:
            if self._pull_active:
                self._cancel_requested = True
                return
        self._do_cancel()

    def _do_cancel(self) -> None:
        try:
            self._handle.cancel()
        except Exception:  # pragma: no cover - cancel() does not raise today
            pass

    # -- the awaitable access paths ------------------------------------

    async def page(self, index: int, size: int = DEFAULT_PAGE_SIZE) -> List[Answer]:
        """The ``index``-th page, pulled off-loop."""
        return await self._call(self._handle.page, index, size)

    async def all(self) -> List[Answer]:
        """Every answer (serial order), pulled off-loop."""
        return await self._call(self._handle.all)

    async def count(self) -> int:
        """``|q(A)|`` via the (possibly parallel) counting engine."""
        return await self._call(self._handle.count)

    async def test(self, candidate: Sequence[Element]) -> bool:
        """Constant-time membership test."""
        return await self._call(self._handle.test, candidate)

    async def stream(
        self, page_size: int = DEFAULT_PAGE_SIZE
    ) -> AsyncIterator[Answer]:
        """Yield answers one by one; pulls happen a page at a time.

        Abandoning the stream (``break``, task cancellation, closing the
        async generator) cancels the underlying handle — a partially
        consumed stream does not keep pool workers busy.
        """
        index = 0
        exhausted = False
        try:
            while True:
                page = await self._call(self._handle.page, index, page_size)
                if not page:
                    exhausted = True
                    return
                for answer in page:
                    yield answer
                if len(page) < page_size:
                    exhausted = True
                    return
                index += 1
        finally:
            if not exhausted and not self._handle.cancelled:
                self._cancel_quietly()

    async def cancel(self) -> None:
        """Cancel the handle (deferred past any in-flight pull)."""
        async with self._lock:
            self._cancel_quietly()

    def __aiter__(self) -> AsyncIterator[Answer]:
        return self.stream()


class AsyncQueryBatch:
    """Asyncio wrapper around a (possibly shared) :class:`QueryBatch`.

    Construct it from a structure (the batch is owned, and closed by
    :meth:`close` / ``async with``) or from an existing ``QueryBatch``
    (whose lifecycle stays with the caller).
    """

    def __init__(
        self,
        structure_or_batch: Union[Structure, QueryBatch],
        **batch_options,
    ):
        if isinstance(structure_or_batch, QueryBatch):
            if batch_options:
                raise TypeError(
                    "batch options only apply when constructing from a "
                    "structure; configure the QueryBatch directly instead"
                )
            self._batch = structure_or_batch
            self._owned = False
        else:
            self._batch = QueryBatch(structure_or_batch, **batch_options)
            self._owned = True
        # Pipeline builds mutate the shared cache and are CPU-heavy;
        # serialize them.  Handle pulls (the actual answer production) run
        # outside this lock, so handles still progress concurrently.
        self._submit_lock = asyncio.Lock()

    @property
    def batch(self) -> QueryBatch:
        return self._batch

    async def submit(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        **submit_options,
    ) -> AsyncResultHandle:
        """Prepare (or cache-hit) the pipeline off-loop; await the handle."""
        async with self._submit_lock:
            handle = await asyncio.to_thread(
                self._batch.submit, query, order=order, **submit_options
            )
        return AsyncResultHandle(handle)

    async def count(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
    ) -> int:
        """``|q(A)|`` without keeping a handle around."""
        async with self._submit_lock:
            handle = await asyncio.to_thread(
                self._batch.submit, query, order=order
            )
        return await AsyncResultHandle(handle).count()

    async def stream(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> AsyncIterator[Answer]:
        """Submit and stream in one call."""
        handle = await self.submit(query, order=order)
        async for answer in handle.stream(page_size=page_size):
            yield answer

    async def close(self) -> None:
        """Close the owned batch (and its worker pool).  Idempotent.

        A wrapped caller-owned batch is left open.
        """
        if self._owned:
            await asyncio.to_thread(self._batch.close)

    async def __aenter__(self) -> "AsyncQueryBatch":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
