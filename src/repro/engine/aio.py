"""Asyncio front-end over the batch engine — now a thin shim.

.. deprecated::
    The unified :class:`repro.session.Answers` handle exposes the same
    awaitable surface directly (``await answers.acount()``,
    ``async for answer in answers``), so an event-loop application can
    use :class:`repro.session.Database` without this wrapper.

:class:`AsyncQueryBatch` / :class:`AsyncResultHandle` keep the pre-session
API: every blocking stage — pipeline preparation, branch pulls, counting —
runs on a worker thread, the loop never stalls, and the underlying
thread/process fan-out still happens in the session's long-lived
:class:`~repro.engine.pool.WorkerPool`.  Semantics are those of the
wrapped :class:`~repro.session.answers.Answers` object:

* answers arrive in the exact serial enumeration order;
* ``await``-ing a handle whose database has moved on raises
  :class:`repro.errors.StaleResultError` — this facade keeps the
  historical raise-on-mutation contract, unlike session
  :class:`~repro.session.answers.Answers` handles, which pin their
  version and keep streaming byte-identically across commits;
* a cancelled handle raises :class:`repro.errors.CancelledResultError`;
* cancelling the awaiting task (or abandoning a stream) propagates into
  the engine as soon as the in-flight pull retires, releasing pool slots.

Quick start::

    async with AsyncQueryBatch(structure, workers=4) as batch:
        handle = await batch.submit("B(x) & R(y) & ~E(x,y)")
        total = await handle.count()
        async for answer in handle.stream():
            ...
"""

from __future__ import annotations

import asyncio
import warnings
from typing import AsyncIterator, Hashable, List, Optional, Sequence, Tuple, Union

from repro.engine.batch import DEFAULT_PAGE_SIZE, QueryBatch, ResultHandle
from repro.fo.syntax import Formula, Var
from repro.structures.structure import Structure

Element = Hashable
Answer = Tuple[Element, ...]


class AsyncResultHandle:
    """Awaitable facade over one :class:`ResultHandle`.

    The wrapped handle is an :class:`~repro.session.answers.Answers`,
    which carries the awaitable machinery itself; this class only maps
    the legacy method names (``page`` instead of ``apage``, ...) onto it.
    """

    def __init__(self, handle: ResultHandle):
        self._handle = handle

    @property
    def inner(self) -> ResultHandle:
        return self._handle

    @property
    def cancelled(self) -> bool:
        return self._handle.cancelled

    @property
    def stale(self) -> bool:
        return self._handle.stale

    # -- the awaitable access paths ------------------------------------

    async def page(self, index: int, size: int = DEFAULT_PAGE_SIZE) -> List[Answer]:
        """The ``index``-th page, pulled off-loop."""
        return await self._handle.apage(index, size)

    async def all(self) -> List[Answer]:
        """Every answer (serial order), pulled off-loop."""
        return await self._handle.aall()

    async def count(self) -> int:
        """``|q(A)|`` via the (possibly parallel) counting engine."""
        return await self._handle.acount()

    async def test(self, candidate: Sequence[Element]) -> bool:
        """Constant-time membership test."""
        return await self._handle.atest(candidate)

    def stream(
        self, page_size: int = DEFAULT_PAGE_SIZE
    ) -> AsyncIterator[Answer]:
        """Yield answers one by one; pulls happen a page at a time.

        Abandoning the stream (``break``, task cancellation, closing the
        async generator) cancels the underlying handle — a partially
        consumed stream does not keep pool workers busy.
        """
        return self._handle.astream(page_size=page_size)

    async def cancel(self) -> None:
        """Cancel the handle (deferred past any in-flight pull)."""
        await self._handle.acancel()

    def __aiter__(self) -> AsyncIterator[Answer]:
        return self._handle.astream()


class AsyncQueryBatch:
    """Asyncio wrapper around a (possibly shared) :class:`QueryBatch`.

    .. deprecated:: Use :class:`repro.session.Database` — its
        :class:`~repro.session.answers.Answers` handles are awaitable
        directly.

    Construct it from a structure (the batch is owned, and closed by
    :meth:`close` / ``async with``) or from an existing ``QueryBatch``
    (whose lifecycle stays with the caller).
    """

    def __init__(
        self,
        structure_or_batch: Union[Structure, QueryBatch],
        **batch_options,
    ):
        warnings.warn(
            "AsyncQueryBatch is deprecated; repro.session.Database "
            "answers are awaitable directly (acount/apage/astream)",
            DeprecationWarning,
            stacklevel=2,
        )
        if isinstance(structure_or_batch, QueryBatch):
            if batch_options:
                raise TypeError(
                    "batch options only apply when constructing from a "
                    "structure; configure the QueryBatch directly instead"
                )
            self._batch = structure_or_batch
            self._owned = False
        else:
            self._batch = QueryBatch(
                structure_or_batch, _warn_deprecated=False, **batch_options
            )
            self._owned = True
        # No submit lock: the session layer is thread-safe and holds
        # per-cache-key build locks, so two *distinct* cold queries build
        # their pipelines concurrently while racing submits of the same
        # query still build exactly once.

    @property
    def batch(self) -> QueryBatch:
        return self._batch

    async def submit(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        **submit_options,
    ) -> AsyncResultHandle:
        """Prepare (or cache-hit) the pipeline off-loop; await the handle.

        Concurrent cold submits of distinct queries overlap their
        pipeline builds (per-cache-key locking in the session layer).
        """
        handle = await asyncio.to_thread(
            self._batch.submit, query, order=order, **submit_options
        )
        return AsyncResultHandle(handle)

    async def count(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
    ) -> int:
        """``|q(A)|`` without keeping a handle around."""
        handle = await asyncio.to_thread(
            self._batch.submit, query, order=order
        )
        return await AsyncResultHandle(handle).count()

    async def stream(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> AsyncIterator[Answer]:
        """Submit and stream in one call."""
        handle = await self.submit(query, order=order)
        async for answer in handle.stream(page_size=page_size):
            yield answer

    async def close(self) -> None:
        """Close the owned batch (and its worker pool).  Idempotent.

        A wrapped caller-owned batch is left open.
        """
        if self._owned:
            await asyncio.to_thread(self._batch.close)

    async def __aenter__(self) -> "AsyncQueryBatch":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
