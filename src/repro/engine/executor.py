"""Branch-parallel execution of a prepared pipeline.

The branch decomposition ``(P, t)`` of Proposition 3.4 is embarrassingly
parallel: branches are mutually exclusive by construction and each one
enumerates independently over the colored graph.  This module farms the
branches of one pipeline out to a pool and merges the per-branch outputs
*deterministically* — results are always consumed in branch-index order,
so the merged stream is byte-identical to the serial
:func:`repro.core.enumeration.enumerate_answers` order.

Pool selection follows the cost-model heuristic
(:func:`repro.storage.cost_model.choose_execution_mode`):

* ``serial`` — tiny workloads; pool overhead dominates;
* ``thread`` — small structures; workers share the parent's pipeline
  (arming and skip memos build in-place, no pickling);
* ``process`` — large structures; each worker rebuilds the pipeline once
  from a picklable spec (memoized per process) and enumeration scales
  past the GIL.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from itertools import islice
from typing import Hashable, Iterator, List, Optional, Tuple

from repro.core.counting import count_answers, count_branch_at, trivial_count
from repro.core.enumeration import (
    arm_enumerator,
    enumerate_branch,
    trivial_answers,
)
from repro.core.pipeline import Pipeline
from repro.engine.mailbox import (
    ChunkMailbox,
    MailboxAbandoned,
    mailbox_available,
    mailbox_capacity,
)
from repro.engine.pool import WorkerPool, default_workers
from repro.engine.transport import (
    ColumnarCodec,
    TransferStats,
    encode_answers,
    resolve_transport,
    width_for,
)
from repro.errors import EngineError
from repro.storage.cost_model import (
    COLUMNAR_BYTES_PER_VALUE,
    PICKLE_BYTES_PER_VALUE,
    choose_execution_mode,
    default_chunk_rows,
    estimate_branch_work,
    estimate_count_work,
    estimate_transfer_work,
)

Element = Hashable
Answer = Tuple[Element, ...]

MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class BranchTask:
    """One picklable unit of parallel work: a branch shard of a pipeline.

    ``spec`` is the pipeline's rebuild recipe
    (:meth:`repro.core.pipeline.Pipeline.rebuild_spec`) and ``spec_key``
    a hashable identity for it, so worker processes reconstruct the
    pipeline once and serve every shard of the same query from the
    per-process memo.  ``spec`` is ``None`` when the pool's initializer
    already shipped it (ephemeral pools) — then only the key travels
    per task.  ``start``/``stop`` bound the branch's outermost
    iteration (``(0, None)`` = the whole branch).
    """

    spec: Optional[tuple]
    spec_key: tuple
    branch_index: int
    skip_mode: str
    start: int = 0
    stop: Optional[int] = None
    # Columnar-transport chunk bound (resolved parent-side; read only by
    # run_branch_task_encoded).
    chunk_rows: Optional[int] = None
    # Projection pushdown (the qlang SELECT-list fusion): answer columns
    # to keep, applied in the worker *before* encoding, so dropped
    # columns never cross the process boundary.  Duplicates are kept —
    # projection is 1:1 row-preserving.
    project: Optional[Tuple[int, ...]] = None
    # Streaming-transfer mailbox ``(shared_memory_name, capacity)``: when
    # set, run_branch_task_encoded appends each encoded chunk to the ring
    # as it enumerates instead of returning the chunk list on the future
    # (which then carries only a completion summary).
    mailbox: Optional[Tuple[str, int]] = None

    @property
    def outer_slice(self) -> Optional[Tuple[int, Optional[int]]]:
        if self.start == 0 and self.stop is None:
            return None
        return (self.start, self.stop)

    @property
    def label(self) -> str:
        """Stable work-unit name for per-source transfer accounting."""
        stop = "" if self.stop is None else self.stop
        return f"b{self.branch_index}[{self.start}:{stop}]"


# Per-worker-process pipeline memo, keyed by BranchTask.spec_key.  Lives
# at module level so ProcessPoolExecutor workers keep it across tasks;
# bounded so a long-lived pool serving many structures/queries cannot
# grow without limit (each entry pins a full colored graph).
_WORKER_MEMO_CAPACITY = 8
_WORKER_PIPELINES: "dict" = {}


def _memoize_worker_pipeline(spec_key: tuple, spec: tuple) -> Pipeline:
    pipeline = _WORKER_PIPELINES.get(spec_key)
    if pipeline is None:
        structure, query, variables, eps, budget, intern = spec
        pipeline = Pipeline(
            structure, query, order=variables, eps=eps, budget=budget,
            intern=intern,
        )
        while len(_WORKER_PIPELINES) >= _WORKER_MEMO_CAPACITY:
            _WORKER_PIPELINES.pop(next(iter(_WORKER_PIPELINES)))
        _WORKER_PIPELINES[spec_key] = pipeline
    else:
        # Keep insertion order ~LRU: re-append on every hit.
        _WORKER_PIPELINES.pop(spec_key)
        _WORKER_PIPELINES[spec_key] = pipeline
    return pipeline


def _init_worker(spec: tuple, spec_key: tuple) -> None:
    """Pool initializer: build the pipeline once per worker up front, so
    per-task payloads carry only the key (the structure is shipped once
    per worker instead of once per shard)."""
    _memoize_worker_pipeline(spec_key, spec)


def _worker_pipeline(task: BranchTask) -> Pipeline:
    if task.spec is not None:
        return _memoize_worker_pipeline(task.spec_key, task.spec)
    pipeline = _WORKER_PIPELINES.get(task.spec_key)
    if pipeline is None:
        raise EngineError(
            "worker has no pipeline for this task and the task carries no "
            "spec; was the pool initialized/warmed for a different query?"
        )
    return pipeline


def _project_rows(rows, project: Optional[Tuple[int, ...]]):
    """Keep only the ``project`` columns of each row (lazily)."""
    if project is None:
        return rows
    return (tuple(row[i] for i in project) for row in rows)


def run_branch_task(task: BranchTask) -> List[Answer]:
    """Entry point executed inside a worker process (pickle transport)."""
    pipeline = _worker_pipeline(task)
    return list(
        _project_rows(
            enumerate_branch(
                pipeline,
                task.branch_index,
                skip_mode=task.skip_mode,
                outer_slice=task.outer_slice,
            ),
            task.project,
        )
    )


def run_branch_task_encoded(task: BranchTask):
    """Entry point executed inside a worker process (columnar transport).

    Instead of one picklable list of answer tuples, the shard comes back
    as bounded columnar buffers (``task.chunk_rows`` rows each) over the
    pipeline's intern table — the parent decodes them lazily, so its
    first page never waits on the whole shard's serialization.

    With ``task.mailbox`` set, each buffer is appended to the shared
    -memory ring *as enumeration produces it* (true streaming transfer:
    the parent reads the first chunk while this worker is still
    enumerating) and the return value is a completion summary dict
    (``{"chunks", "rows", "finished"}``).  If the ring cannot be
    attached, the chunk list comes back on the future exactly as in the
    legacy path — the parent detects the fallback by the result type.
    """
    pipeline = _worker_pipeline(task)
    codec = ColumnarCodec(pipeline.intern_table)
    chunk_rows = task.chunk_rows or default_chunk_rows(
        pipeline.arity, pipeline.intern_table.id_width()
    )
    rows = _project_rows(
        enumerate_branch(
            pipeline,
            task.branch_index,
            skip_mode=task.skip_mode,
            outer_slice=task.outer_slice,
        ),
        task.project,
    )
    if task.mailbox is None:
        return encode_answers(rows, codec, chunk_rows)
    name, capacity = task.mailbox
    try:
        ring = ChunkMailbox(name=name, capacity=capacity)
    except Exception:
        # No shared memory from this worker's side: degrade to the
        # legacy whole-list future (the parent sees a list and decodes
        # it after completion; `done` never gets set on the ring).
        return encode_answers(rows, codec, chunk_rows)
    chunks = 0
    produced = 0
    try:
        buffer: List[Answer] = []
        for answer in rows:
            buffer.append(answer)
            if len(buffer) >= chunk_rows:
                ring.put(codec.encode(buffer))
                chunks += 1
                produced += len(buffer)
                buffer = []
        if buffer:
            ring.put(codec.encode(buffer))
            chunks += 1
            produced += len(buffer)
        ring.finish()
    except MailboxAbandoned:
        # Parent cancelled the query; what streamed already is enough.
        pass
    finally:
        summary = {"chunks": chunks, "rows": produced, "finished": time.monotonic()}
        ring.close()
    return summary


def count_branch_task(task: BranchTask) -> int:
    """Count one branch inside a worker process (Theorem 2.5 term).

    ``start``/``stop`` are ignored: counting walks no enumeration order,
    so the unit of parallel counting work is a whole branch.
    """
    pipeline = _worker_pipeline(task)
    return count_branch_at(pipeline, task.branch_index)


def warm_task(task: BranchTask) -> bool:
    """Rebuild (and memoize) the pipeline in a worker, producing nothing.

    Submitting ``workers`` of these before timing/serving queries moves
    the per-process preprocessing cost out of the request path — the
    service regime, where one long-lived pool answers many queries.
    """
    _worker_pipeline(task)
    return True


def warm_pool(
    pool,
    pipeline: Pipeline,
    workers: int,
    spec_key: Optional[tuple] = None,
    skip_mode: str = "lazy",
) -> None:
    """Pre-build the pipeline on (up to) every worker of a process pool."""
    if isinstance(pool, WorkerPool):
        pool = pool.executor_for("process")
    if pipeline.trivial is not None:
        return
    if spec_key is None:
        spec_key = _default_spec_key(pipeline)
    spec = pipeline.rebuild_spec()
    task = BranchTask(spec, spec_key, 0, skip_mode)
    futures = [pool.submit(warm_task, task) for _ in range(workers)]
    for future in futures:
        future.result()


def branch_works(pipeline: Pipeline) -> List[int]:
    """Estimated work per branch (the heuristic's input)."""
    if pipeline.trivial is not None or pipeline.graph is None:
        return []
    degree = pipeline.graph.max_degree if pipeline.graph.adjacency else 0
    return [
        estimate_branch_work(
            [len(node_list) for node_list in branch.lists], degree
        )
        for branch in pipeline.branches
    ]


def count_works(pipeline: Pipeline) -> List[int]:
    """Estimated *counting* work per branch (the count heuristic's input)."""
    if pipeline.trivial is not None or pipeline.graph is None:
        return []
    degree = pipeline.graph.max_degree if pipeline.graph.adjacency else 0
    return [
        estimate_count_work(
            [len(node_list) for node_list in branch.lists], degree
        )
        for branch in pipeline.branches
    ]


def transfer_works(
    pipeline: Pipeline, transport=None, lanes: Optional[int] = None
) -> List[int]:
    """Estimated per-branch cost of shipping answers to the parent.

    Only process mode pays it; the estimate follows the plan's transport
    — the columnar codec moves a bounded few bytes per value, pickled
    tuple lists roughly three times that — so the cost model can decline
    process mode exactly when serialization would eat the speedup.

    ``lanes`` models the streaming overlap: with the shared-memory chunk
    mailbox, a branch split across ``lanes`` work units ships while the
    other units still enumerate, so the serialized parent-side cost is
    the overlapped critical path (largest share plus the amortized
    rest), not the plain sum.  Without it, a large-but-well-sharded
    workload would be misranked as transfer-bound and pushed off the
    process backend it actually benefits from.
    """
    if pipeline.trivial is not None or pipeline.graph is None:
        return []
    # Intern-id width follows from the domain size alone — don't force
    # the intern table just to estimate (serial/thread plans never
    # build it).
    id_width = width_for(max(pipeline.structure.cardinality - 1, 0))
    bytes_per_value = (
        PICKLE_BYTES_PER_VALUE
        if resolve_transport(transport) == "pickle"
        else min(COLUMNAR_BYTES_PER_VALUE, id_width)
    )
    shard_sizes = None
    if (
        lanes is not None
        and lanes > 1
        and resolve_transport(transport) == "columnar"
        and mailbox_available()
    ):
        # The executor slices heavy branches into roughly equal work
        # units; equal shares are the right overlap model here.
        shard_sizes = [1] * lanes
    return [
        estimate_transfer_work(
            [len(node_list) for node_list in branch.lists],
            pipeline.arity,
            bytes_per_value,
            shard_sizes=shard_sizes,
        )
        for branch in pipeline.branches
    ]


def resolve_chunk_rows(pipeline: Pipeline, chunk_rows: Optional[int]) -> int:
    """The effective transport chunk bound (cost-model default)."""
    if chunk_rows is not None:
        if chunk_rows < 1:
            raise EngineError(f"chunk_rows must be >= 1, got {chunk_rows}")
        return chunk_rows
    id_width = width_for(max(pipeline.structure.cardinality - 1, 0))
    return default_chunk_rows(pipeline.arity, id_width)


def _resolve_mode(pipeline, workers, mode, works_fn, transfer_fn=None) -> Tuple[str, int]:
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    if mode is None:
        transfer = (
            sum(transfer_fn(pipeline, workers))
            if transfer_fn is not None
            else None
        )
        mode = choose_execution_mode(
            works_fn(pipeline), workers, transfer_work=transfer
        )
    elif mode not in MODES:
        raise EngineError(f"unknown execution mode {mode!r}; choose from {MODES}")
    if mode == "serial":
        workers = 1
    return mode, workers


def decide_mode(
    pipeline: Pipeline,
    workers: Optional[int] = None,
    mode: Optional[str] = None,
    transport=None,
) -> Tuple[str, int]:
    """Resolve ``(mode, workers)`` for a pipeline, applying the heuristic.

    The enumeration heuristic weighs the answer-transfer term: a
    workload whose estimated serialization cost dominates its compute
    stays on threads (zero-copy) even past the process threshold.
    """
    def transfer(p: Pipeline, lanes: Optional[int]) -> List[int]:
        return transfer_works(p, transport, lanes=lanes)

    return _resolve_mode(pipeline, workers, mode, branch_works, transfer)


def decide_count_mode(
    pipeline: Pipeline, workers: Optional[int] = None, mode: Optional[str] = None
) -> Tuple[str, int]:
    """Like :func:`decide_mode`, but weighted by the counting cost model.

    Counting a branch is usually far cheaper than enumerating it (no
    answer materialization), so workloads that enumerate in process mode
    often still count serially or on threads.
    """
    return _resolve_mode(pipeline, workers, mode, count_works)


def _default_spec_key(pipeline: Pipeline) -> tuple:
    from repro.structures.serialize import fingerprint

    budget = pipeline.budget
    return (
        fingerprint(pipeline.structure),
        str(pipeline.query),
        tuple(v.name for v in pipeline.variables),
        pipeline.eps,
        None if budget is None else (
            budget.max_radius, budget.max_count_split, budget.max_derived
        ),
    )


WorkUnit = Tuple[int, int, Optional[int]]  # (branch_index, start, stop)


def plan_work_units(pipeline: Pipeline, workers: int) -> List[WorkUnit]:
    """Split the pipeline's branches into balanced shards.

    Branch-level splitting alone load-balances poorly: on symmetric
    queries the all-far partition's branch often carries nearly all the
    answers.  A branch whose estimated work exceeds the per-worker
    target is therefore sharded along its outermost iteration
    (:meth:`BranchEnumerator.outer_size`), keeping shards contiguous so
    the ordered merge stays exact.  Units are returned in
    ``(branch, start)`` order — concatenating their outputs reproduces
    the serial answer order.
    """
    works = branch_works(pipeline)
    total = sum(works)
    units: List[WorkUnit] = []
    # Aim for ~2 units per worker so stragglers back-fill.
    target = max(total // (2 * workers), 1)
    for branch_index, work in enumerate(works):
        if work <= target or workers <= 1:
            units.append((branch_index, 0, None))
            continue
        # Sharding granularity comes from the lazily armed enumerator;
        # the outer structure (small/big block split, list lengths) is
        # identical across skip modes, so planning is mode-independent.
        size = arm_enumerator(pipeline, branch_index, "lazy").outer_size()
        shards = min(-(-work // target), 4 * workers, size)
        if shards <= 1:
            units.append((branch_index, 0, None))
            continue
        bound = 0
        for shard in range(shards):
            start = bound
            bound = size * (shard + 1) // shards
            units.append((branch_index, start, bound))
    return units


def _budgeted(
    chunks: Iterator[List[Answer]], budget: int
) -> Iterator[List[Answer]]:
    """Truncate a chunk stream after ``budget`` rows, closing the source.

    Closing the inner generator raises ``GeneratorExit`` inside it, which
    the future-draining generators translate into ``future.cancel()`` —
    work units the consumer will never read are abandoned instead of
    computed.  The final chunk is cut to size so the flattened stream
    holds exactly ``min(total, budget)`` answers.
    """
    remaining = budget
    try:
        for chunk in chunks:
            if len(chunk) >= remaining:
                yield chunk[:remaining]
                return
            remaining -= len(chunk)
            if chunk:
                yield chunk
    finally:
        close = getattr(chunks, "close", None)
        if close is not None:
            close()


def _yield_futures(futures) -> Iterator[List[Answer]]:
    """Drain futures in submission (= branch) order; cancel on abandon."""
    try:
        for future in futures:
            yield future.result()
    except GeneratorExit:
        for future in futures:
            future.cancel()
        raise


def _yield_encoded(
    futures,
    codec: ColumnarCodec,
    transfer_stats: Optional[TransferStats] = None,
    pool: Optional[WorkerPool] = None,
    labels: Optional[List[str]] = None,
) -> Iterator[List[Answer]]:
    """Decode columnar shard results lazily, in submission order.

    Each future resolves to a list of bounded byte buffers; buffers are
    decoded one at a time as the consumer pulls, so a first page costs
    one chunk's decode, not a shard's unpickling.  ``labels`` attributes
    chunks to their work units in ``transfer_stats``.
    """
    try:
        for index, future in enumerate(futures):
            label = labels[index] if labels is not None else None
            for buf in future.result():
                chunk = codec.decode(buf)
                if transfer_stats is not None:
                    transfer_stats.record(len(buf), len(chunk), source=label)
                if pool is not None:
                    pool.record_transfer(len(buf))
                yield chunk
            if transfer_stats is not None and label is not None:
                transfer_stats.note_done(label)
    except GeneratorExit:
        for future in futures:
            future.cancel()
        raise


# Parent-side poll cadence while a mailbox is empty but its unit is
# still running (seconds); backs off to keep an idle drain cheap.
_DRAIN_POLL_MIN = 0.0002
_DRAIN_POLL_MAX = 0.005


def _yield_encoded_mailboxed(
    entries,
    codec: ColumnarCodec,
    transfer_stats: Optional[TransferStats] = None,
    pool: Optional[WorkerPool] = None,
) -> Iterator[List[Answer]]:
    """Drain mailbox-equipped work units in submission order.

    ``entries`` is a list of ``(future, mailbox_or_None, label)``.  Each
    unit's ring is polled while its worker enumerates, so the first
    chunk of a heavy unit is decoded (and served) long before the
    worker's future resolves; order stays deterministic because units
    are drained in submission (= branch, slice) order.  Units whose
    ring could not be created (or whose worker could not attach — it
    then returns the legacy chunk list) fall back to the future path.
    On abandonment every ring is flagged so blocked producers stop.
    """

    def account(buf: bytes, label: str) -> List[Answer]:
        chunk = codec.decode(buf)
        if transfer_stats is not None:
            transfer_stats.record(len(buf), len(chunk), source=label)
        if pool is not None:
            pool.record_transfer(len(buf))
        return chunk

    try:
        for future, ring, label in entries:
            if ring is None:
                for buf in future.result():
                    yield account(buf, label)
                if transfer_stats is not None:
                    transfer_stats.note_done(label)
                continue
            finished_at: Optional[float] = None
            delay = _DRAIN_POLL_MIN
            while True:
                buf = ring.poll()
                if buf is not None:
                    delay = _DRAIN_POLL_MIN
                    yield account(buf, label)
                    continue
                if ring.done:
                    # `done` is set after the final head advance, so one
                    # more poll round has already proven the ring empty.
                    summary = future.result() if future.done() else None
                    if isinstance(summary, dict):
                        finished_at = summary.get("finished")
                    break
                if future.done():
                    result = future.result()  # raises worker errors
                    if isinstance(result, list):
                        # Worker could not attach the ring: legacy path.
                        for buf in result:
                            yield account(buf, label)
                        break
                    # Summary without the done flag visible yet: loop —
                    # the flag write precedes the future's resolution.
                    if isinstance(result, dict):
                        finished_at = result.get("finished")
                        if ring.done or ring.poll() is None:
                            # Defensive: never hang on a unit whose ring
                            # lost its done flag.
                            for buf in ring.drain():
                                yield account(buf, label)
                            break
                        continue
                    break
                time.sleep(delay)
                delay = min(delay * 2, _DRAIN_POLL_MAX)
            if transfer_stats is not None:
                transfer_stats.note_done(label, at=finished_at)
    except GeneratorExit:
        for future, ring, _ in entries:
            future.cancel()
            if ring is not None:
                ring.abandon()
        raise
    finally:
        for _, ring, _ in entries:
            if ring is not None:
                ring.abandon()
                ring.close(unlink=True)


def run_branches(
    pipeline: Pipeline,
    workers: Optional[int] = None,
    mode: Optional[str] = None,
    skip_mode: str = "lazy",
    spec_key: Optional[tuple] = None,
    executor=None,
    pool: Optional[WorkerPool] = None,
    chunk_rows: Optional[int] = None,
    transport: Optional[str] = None,
    transfer_stats: Optional[TransferStats] = None,
    row_budget: Optional[int] = None,
    project_columns: Optional[Tuple[int, ...]] = None,
    mailbox_bytes: Optional[int] = None,
) -> Iterator[List[Answer]]:
    """Yield answer chunks, in branch-index (then slice, then chunk) order.

    The deterministic merge: regardless of which worker finishes first,
    branch ``i``'s chunks are yielded before branch ``i + 1``'s, so
    flattening reproduces the serial answer order exactly.  Serial and
    thread modes yield one in-process list per branch/shard (zero-copy);
    process mode yields decoded columnar chunks of at most ``chunk_rows``
    answers each (``transport="pickle"`` restores the legacy whole-list
    transfer, e.g. for differential testing).

    ``pool`` is the batch-owned :class:`~repro.engine.pool.WorkerPool`:
    long-lived, lazily started, restarted after worker crashes; its
    per-process pipeline memos amortize rebuilds across every query of
    the same structure.  ``executor`` is the legacy escape hatch — a
    caller-supplied ``concurrent.futures`` executor that takes precedence
    over ``pool``.  With neither, a fresh pool is created and torn down
    per call.  ``transfer_stats`` receives per-chunk byte/row accounting
    for the columnar path (observability; the bench uses it).

    ``row_budget`` is the early-stop path (the qlang ``LIMIT`` fusion):
    the stream ends after exactly ``min(total, row_budget)`` answers.
    Serial mode enumerates lazily and touches O(budget) rows; parallel
    modes truncate the drain and close it, cancelling every work unit
    the consumer will never read.  The budgeted prefix is byte-identical
    to the unbudgeted stream's prefix in every mode.

    ``project_columns`` keeps only those answer columns (duplicates
    preserved; rows stay 1:1 with the enumeration).  Process-mode
    workers apply it *before* encoding, so dropped columns never cross
    the process boundary — the qlang SELECT-list pushdown.

    Process-mode columnar units additionally stream their chunks
    through a shared-memory :class:`~repro.engine.mailbox.ChunkMailbox`
    when the platform supports it: the first page of a heavy shard is
    decoded parent-side while that shard is still enumerating (bounded
    *transfer*, not just bounded decode).  ``mailbox_bytes`` overrides
    the per-unit ring capacity (smaller rings force backpressure — the
    bench uses this); when shared memory is unavailable the chunks ride
    the future exactly as before.  Answer bytes and order are identical
    either way.
    """
    transport = resolve_transport(transport)
    if pipeline.trivial is not None:
        return
    if row_budget is not None:
        if row_budget < 0:
            raise EngineError(f"row_budget must be >= 0, got {row_budget}")
        if row_budget == 0:
            return
        if mode is None and row_budget <= resolve_chunk_rows(
            pipeline, chunk_rows
        ):
            # Constant delay bounds the useful work to O(budget) rows;
            # for small budgets pool startup and shard materialization
            # would dominate, so auto mode stays serial.
            mode = "serial"
    mode, workers = decide_mode(pipeline, workers, mode, transport=transport)
    if mode == "serial":
        if row_budget is not None:
            remaining = row_budget
            for branch_index in range(len(pipeline.branches)):
                branch_iter = enumerate_branch(
                    pipeline, branch_index, skip_mode=skip_mode
                )
                chunk = list(
                    islice(_project_rows(branch_iter, project_columns), remaining)
                )
                close = getattr(branch_iter, "close", None)
                if close is not None:
                    close()
                if chunk:
                    yield chunk
                    remaining -= len(chunk)
                    if remaining <= 0:
                        return
            return
        for branch_index in range(len(pipeline.branches)):
            yield list(
                _project_rows(
                    enumerate_branch(
                        pipeline, branch_index, skip_mode=skip_mode
                    ),
                    project_columns,
                )
            )
        return
    units = plan_work_units(pipeline, workers)

    def bounded(stream: Iterator[List[Answer]]) -> Iterator[List[Answer]]:
        return stream if row_budget is None else _budgeted(stream, row_budget)
    if mode == "thread":
        # Pre-create the arming cache so concurrent workers never race on
        # installing the dict itself (per-branch keys are disjoint), and
        # arm up front: shards of one branch share its enumerator.
        if getattr(pipeline, "_armed_branches", None) is None:
            pipeline._armed_branches = {}  # type: ignore[attr-defined]
        for branch_index in {unit[0] for unit in units}:
            arm_enumerator(pipeline, branch_index, skip_mode)

        def thread_task(unit: WorkUnit) -> List[Answer]:
            branch_index, start, stop = unit
            outer_slice = None if start == 0 and stop is None else (start, stop)
            return list(
                _project_rows(
                    enumerate_branch(
                        pipeline,
                        branch_index,
                        skip_mode=skip_mode,
                        outer_slice=outer_slice,
                    ),
                    project_columns,
                )
            )

        # Only a thread pool can run the closure over the parent's
        # pipeline; a process pool handed in by the caller (for process
        # mode) cannot pickle it — fall back to an ephemeral thread pool.
        if executor is not None and isinstance(executor, ThreadPoolExecutor):
            futures = [executor.submit(thread_task, unit) for unit in units]
            yield from bounded(_yield_futures(futures))
            return
        if pool is not None:
            futures = [
                pool.submit("thread", thread_task, unit) for unit in units
            ]
            yield from bounded(_yield_futures(futures))
            return
        with ThreadPoolExecutor(max_workers=workers) as ephemeral:
            futures = [ephemeral.submit(thread_task, unit) for unit in units]
            yield from bounded(_yield_futures(futures))
        return
    # Process mode: ship the picklable spec, rebuild per worker (memoized
    # per process under spec_key).  The columnar transport (default)
    # returns bounded encoded chunks decoded lazily parent-side; the
    # pickle transport returns the legacy whole answer list per shard.
    if spec_key is None:
        spec_key = _default_spec_key(pipeline)
    columnar = transport == "columnar"
    if columnar:
        rows_per_chunk: Optional[int] = resolve_chunk_rows(pipeline, chunk_rows)
        task_fn = run_branch_task_encoded
        # Force the intern table BEFORE cutting specs: the table then
        # ships inside every spec and the decode side is this exact
        # object (pickle-transport and counting paths ship None and
        # never pay the table build).
        codec = ColumnarCodec(pipeline.intern_table)
    else:
        rows_per_chunk = None
        task_fn = run_branch_task
        codec = None
    spec = pipeline.rebuild_spec()
    # Streaming transfer: one ring per work unit (a unit whose ring
    # cannot be created simply rides its future, per-unit fallback).
    rings: List[Optional[ChunkMailbox]] = [None] * len(units)
    if columnar and mailbox_available():
        id_width = width_for(max(pipeline.structure.cardinality - 1, 0))
        capacity = mailbox_bytes or mailbox_capacity(
            rows_per_chunk * max(pipeline.arity, 1) * id_width + 64
        )
        for index in range(len(units)):
            try:
                rings[index] = ChunkMailbox(create=True, capacity=capacity)
            except Exception:
                rings[index] = None

    def make_tasks(ship_spec: bool) -> List[BranchTask]:
        return [
            BranchTask(
                spec if ship_spec else None, spec_key, branch_index,
                skip_mode, start, stop, rows_per_chunk, project_columns,
                None if ring is None else (ring.name, ring.capacity),
            )
            for (branch_index, start, stop), ring in zip(units, rings)
        ]

    def drain(futures, tasks) -> Iterator[List[Answer]]:
        if not columnar:
            return _yield_futures(futures)
        labels = [task.label for task in tasks]
        if any(ring is not None for ring in rings):
            entries = list(zip(futures, rings, labels))
            return _yield_encoded_mailboxed(entries, codec, transfer_stats, pool)
        return _yield_encoded(futures, codec, transfer_stats, pool, labels)

    if executor is not None and not isinstance(executor, ThreadPoolExecutor):
        # External (possibly shared/warmed) process pool: its workers may
        # serve other queries, so every task must carry the spec.  (A
        # thread pool is not reused here — rebuilding the pipeline inside
        # the parent process would only duplicate it.)
        tasks = make_tasks(ship_spec=True)
        futures = [executor.submit(task_fn, task) for task in tasks]
        yield from bounded(drain(futures, tasks))
        return
    if pool is not None:
        # Batch-owned long-lived pool: like the external case its workers
        # serve many queries, so tasks carry the spec (memoized worker-side
        # under spec_key after the first shard arrives).
        tasks = make_tasks(ship_spec=True)
        futures = [pool.submit("process", task_fn, task) for task in tasks]
        yield from bounded(drain(futures, tasks))
        return
    # Ephemeral pool: the initializer ships the spec once per worker;
    # tasks carry only the key (the structure is not re-pickled per shard).
    tasks = make_tasks(ship_spec=False)
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(spec, spec_key)
    ) as ephemeral:
        futures = [ephemeral.submit(task_fn, task) for task in tasks]
        yield from bounded(drain(futures, tasks))


def run_branches_raw(
    pipeline: Pipeline,
    workers: Optional[int] = None,
    mode: Optional[str] = None,
    skip_mode: str = "lazy",
    spec_key: Optional[tuple] = None,
    pool: Optional[WorkerPool] = None,
    chunk_rows: Optional[int] = None,
    transfer_stats: Optional[TransferStats] = None,
    project_columns: Optional[Tuple[int, ...]] = None,
) -> Iterator[bytes]:
    """Yield *encoded* columnar chunk buffers, in deterministic order.

    The serve tier's wire path: the network server forwards these
    buffers straight to the socket, so in process mode a worker-encoded
    chunk crosses the parent without ever being decoded — the parent
    handles bytes, not rows (``transfer_stats`` records every chunk
    with ``rows=0``).  Serial and thread modes have no process boundary,
    so the parent-side encode here is the *only* encode; trivial
    pipelines encode their literal answers.  Every buffer decodes with
    ``ColumnarCodec(pipeline.intern_table)``, and the concatenated
    decoded rows are byte-identical to serial enumeration (chunks are
    bounded by :func:`resolve_chunk_rows`; the final chunk of a shard
    may be short, so chunk boundaries — not contents — can differ
    between modes).
    """
    rows_per_chunk = resolve_chunk_rows(pipeline, chunk_rows)
    codec = ColumnarCodec(pipeline.intern_table)

    def account(buf: bytes) -> bytes:
        if transfer_stats is not None:
            transfer_stats.record(len(buf), 0)
        if pool is not None:
            pool.record_transfer(len(buf))
        return buf

    if pipeline.trivial is not None:
        answers = _project_rows(trivial_answers(pipeline), project_columns)
        for buf in encode_answers(answers, codec, rows_per_chunk):
            yield account(buf)
        return
    mode, workers = decide_mode(pipeline, workers, mode, transport="columnar")
    if mode != "process":
        # In-process enumeration: re-chunk each branch's answers to the
        # transport bound and encode parent-side (the only copy made).
        buffer: List[Answer] = []
        for chunk in run_branches(
            pipeline,
            workers=workers,
            mode=mode,
            skip_mode=skip_mode,
            spec_key=spec_key,
            pool=pool,
            project_columns=project_columns,
        ):
            buffer.extend(chunk)
            while len(buffer) >= rows_per_chunk:
                yield account(codec.encode(buffer[:rows_per_chunk]))
                buffer = buffer[rows_per_chunk:]
        if buffer:
            yield account(codec.encode(buffer))
        return
    # Process mode: the workers encode; forward their buffers verbatim.
    if spec_key is None:
        spec_key = _default_spec_key(pipeline)
    units = plan_work_units(pipeline, workers)
    spec = pipeline.rebuild_spec()

    def drain(futures) -> Iterator[bytes]:
        try:
            for future in futures:
                for buf in future.result():
                    yield account(buf)
        except GeneratorExit:
            for future in futures:
                future.cancel()
            raise

    if pool is not None:
        tasks = [
            BranchTask(
                spec, spec_key, branch_index, skip_mode, start, stop,
                rows_per_chunk, project_columns,
            )
            for branch_index, start, stop in units
        ]
        futures = [
            pool.submit("process", run_branch_task_encoded, task)
            for task in tasks
        ]
        yield from drain(futures)
        return
    tasks = [
        BranchTask(
            None, spec_key, branch_index, skip_mode, start, stop,
            rows_per_chunk, project_columns,
        )
        for branch_index, start, stop in units
    ]
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(spec, spec_key)
    ) as ephemeral:
        futures = [
            ephemeral.submit(run_branch_task_encoded, task) for task in tasks
        ]
        yield from drain(futures)


def parallel_enumerate(
    pipeline: Pipeline,
    workers: Optional[int] = None,
    mode: Optional[str] = None,
    skip_mode: str = "lazy",
    executor=None,
    pool: Optional[WorkerPool] = None,
    chunk_rows: Optional[int] = None,
    transport: Optional[str] = None,
    transfer_stats: Optional[TransferStats] = None,
    row_budget: Optional[int] = None,
    mailbox_bytes: Optional[int] = None,
) -> Iterator[Answer]:
    """Enumerate ``q(A)`` using the branch-parallel engine.

    Same answers, same order as the serial
    :func:`repro.core.enumeration.enumerate_answers` — only the wall
    clock (and, in process mode, the wire format) differs.
    """
    if pipeline.trivial is not None:
        answers = trivial_answers(pipeline)
        yield from (
            answers if row_budget is None else islice(answers, row_budget)
        )
        return
    for branch_answers in run_branches(
        pipeline,
        workers=workers,
        mode=mode,
        skip_mode=skip_mode,
        executor=executor,
        pool=pool,
        chunk_rows=chunk_rows,
        transport=transport,
        transfer_stats=transfer_stats,
        row_budget=row_budget,
        mailbox_bytes=mailbox_bytes,
    ):
        yield from branch_answers


def parallel_count(
    pipeline: Pipeline,
    workers: Optional[int] = None,
    mode: Optional[str] = None,
    spec_key: Optional[tuple] = None,
    executor=None,
    pool: Optional[WorkerPool] = None,
) -> int:
    """``|q(A)|`` with the per-branch counts computed in parallel.

    Theorem 2.5 makes the total a sum of *independent* per-branch counts,
    so parallelism cannot change the result: every mode computes the same
    exact integers and adds them in branch order.  The return value is
    guaranteed equal to :func:`repro.core.counting.count_answers` — the
    differential suite (``tests/engine/test_count_differential.py``) and
    the E3 smoke gate enforce this.

    Mode selection uses the *counting* cost model
    (:func:`repro.storage.cost_model.estimate_count_work`): counting never
    materializes answers, so it goes parallel later than enumeration.
    ``pool``/``executor`` follow :func:`run_branches` semantics (batch
    pool vs. legacy caller-supplied executor vs. ephemeral).
    """
    if pipeline.trivial is not None:
        return trivial_count(pipeline)
    mode, workers = decide_count_mode(pipeline, workers, mode)
    if mode == "serial":
        return count_answers(pipeline)
    indices = range(len(pipeline.branches))
    if mode == "thread":
        # Counting only reads the colored graph and branch lists, so
        # threads share the parent pipeline with no arming or pickling.
        if executor is not None and isinstance(executor, ThreadPoolExecutor):
            submit = executor.submit
        elif pool is not None:
            def submit(fn, *args):
                return pool.submit("thread", fn, *args)
        else:
            with ThreadPoolExecutor(max_workers=workers) as ephemeral:
                futures = [
                    ephemeral.submit(count_branch_at, pipeline, i)
                    for i in indices
                ]
                return sum(future.result() for future in futures)
        futures = [submit(count_branch_at, pipeline, i) for i in indices]
        return sum(future.result() for future in futures)
    # Process mode: one task per branch, pipeline rebuilt (memoized) per
    # worker exactly as for enumeration.  Dispatch mirrors run_branches:
    # a long-lived executor/pool serves many queries, so its tasks carry
    # the spec; an ephemeral pool ships it once via the initializer.
    if spec_key is None:
        spec_key = _default_spec_key(pipeline)
    spec = pipeline.rebuild_spec()
    if executor is not None and not isinstance(executor, ThreadPoolExecutor):
        submit = executor.submit
    elif pool is not None:
        def submit(fn, *args):
            return pool.submit("process", fn, *args)
    else:
        tasks = [BranchTask(None, spec_key, i, "lazy") for i in indices]
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(spec, spec_key),
        ) as ephemeral:
            futures = [ephemeral.submit(count_branch_task, t) for t in tasks]
            return sum(future.result() for future in futures)
    tasks = [BranchTask(spec, spec_key, i, "lazy") for i in indices]
    futures = [submit(count_branch_task, task) for task in tasks]
    return sum(future.result() for future in futures)


def prearm(pipeline: Pipeline, skip_mode: str = "lazy") -> None:
    """Arm every branch up front (preprocessing, not delay)."""
    if pipeline.trivial is not None:
        return
    for branch_index in range(len(pipeline.branches)):
        arm_enumerator(pipeline, branch_index, skip_mode)
