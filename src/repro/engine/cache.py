"""Pipeline caching for the batch engine.

Preprocessing (Proposition 3.4) is the expensive half of every query; a
service answering heavy traffic sees the same (structure, query) pairs
over and over.  :class:`PipelineCache` memoizes built pipelines under the
key

    (structure fingerprint, normalized formula text, variable order, eps)

* the *fingerprint* (:func:`repro.structures.serialize.fingerprint`) is a
  content hash, so any fact insertion/deletion changes the key and stale
  pipelines simply stop being hit;
* the *normalized formula* runs the query text through the parser and
  :func:`repro.fo.normalize.simplify`, so trivially different spellings
  (``B(x) & R(y)`` vs ``(B(x)) & (R(y))``) share one entry;
* *order* and *eps* complete the key because they change the pipeline's
  answer order and localization budget respectively.

Eviction is LRU with a fixed capacity; hits/misses/evictions are counted
for observability.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.pipeline import Pipeline
from repro.fo import coerce_formula
from repro.fo.normalize import simplify
from repro.fo.syntax import Formula, Var
from repro.structures.serialize import fingerprint
from repro.structures.structure import Structure

CacheKey = Tuple[str, str, Optional[Tuple[str, ...]], float]

# Backwards-compatible alias: the one query-coercion helper now lives in
# ``repro.fo`` so every entry point shares it.
coerce_query = coerce_formula


def coerce_order(
    order: Optional[Sequence[Union[Var, str]]]
) -> Optional[Tuple[Var, ...]]:
    if order is None:
        return None
    return tuple(var if isinstance(var, Var) else Var(var) for var in order)


def normalize_formula(query: Formula) -> str:
    """The formula's cache-key text: simplified, canonically printed."""
    return str(simplify(query))


def cache_key(
    structure_fingerprint: str,
    query: Formula,
    order: Optional[Tuple[Var, ...]],
    eps: float,
) -> CacheKey:
    order_names = tuple(var.name for var in order) if order is not None else None
    return (structure_fingerprint, normalize_formula(query), order_names, eps)


class PipelineCache:
    """LRU cache of built :class:`Pipeline` objects."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, Pipeline]" = OrderedDict()
        # fingerprint tag -> pin count: entries under a retained tag are
        # never LRU-evicted (live snapshots/answer handles may still
        # plan against them); the cache may exceed capacity by the
        # number of retained *entries* — the capacity budget applies to
        # the unpinned population.
        self._retained: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def get(self, key: CacheKey) -> Optional[Pipeline]:
        pipeline = self._entries.get(key)
        if pipeline is not None:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return pipeline

    def put(self, key: CacheKey, pipeline: Pipeline) -> None:
        self._entries[key] = pipeline
        self._entries.move_to_end(key)
        if len(self._entries) <= self.capacity:
            return
        if not self._retained:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return
        # Pinned entries ride *above* capacity: the budget applies to the
        # unpinned population, so a pile of retained snapshot versions
        # can never starve head caching (evicting the entry just
        # inserted would silently disable caching and maintenance).
        retained_entries = sum(
            1 for k in self._entries if k[0] in self._retained
        )
        allowed = self.capacity + retained_entries
        if len(self._entries) <= allowed:
            return
        # Evict oldest-first among the unpinned entries only.
        for candidate in [k for k in self._entries if k[0] not in self._retained]:
            if len(self._entries) <= allowed:
                return
            del self._entries[candidate]
            self.evictions += 1

    # -- snapshot retention --------------------------------------------

    def retain(self, structure_fingerprint: str) -> None:
        """Protect one fingerprint's entries from LRU eviction."""
        self._retained[structure_fingerprint] = (
            self._retained.get(structure_fingerprint, 0) + 1
        )

    def release(self, structure_fingerprint: str) -> None:
        """Drop one retention pin (a no-op for unretained fingerprints)."""
        count = self._retained.get(structure_fingerprint, 0) - 1
        if count > 0:
            self._retained[structure_fingerprint] = count
        else:
            self._retained.pop(structure_fingerprint, None)

    def retained(self, structure_fingerprint: str) -> bool:
        return structure_fingerprint in self._retained

    def get_or_build(
        self,
        structure: Structure,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        eps: float = 0.5,
        structure_fingerprint: Optional[str] = None,
        graph_factory=None,
    ) -> Tuple[Pipeline, CacheKey]:
        """Return the cached pipeline for the key, building on a miss."""
        formula = coerce_query(query)
        variable_order = coerce_order(order)
        if structure_fingerprint is None:
            structure_fingerprint = fingerprint(structure)
        key = cache_key(structure_fingerprint, formula, variable_order, eps)
        pipeline = self.get(key)
        if pipeline is None:
            pipeline = Pipeline(
                structure,
                formula,
                order=variable_order,
                eps=eps,
                graph_factory=graph_factory,
            )
            self.put(key, pipeline)
        return pipeline, key

    def rekey(self, old_fingerprint: str, new_fingerprint: str, keep) -> int:
        """Targeted invalidation after an in-session dynamic update.

        Entries whose full key is in ``keep`` (their pipelines were
        maintained in place) move from ``old_fingerprint`` to
        ``new_fingerprint`` and stay hits; every other entry under the
        old fingerprint is dropped.  Returns how many entries moved.
        LRU recency is preserved for the movers.
        """
        moved = 0
        for key in [k for k in self._entries if k[0] == old_fingerprint]:
            pipeline = self._entries.pop(key)
            if key in keep:
                self._entries[(new_fingerprint,) + key[1:]] = pipeline
                moved += 1
        return moved

    def discard(self, key: CacheKey) -> None:
        """Drop one entry (a no-op when absent)."""
        self._entries.pop(key, None)

    def entries_for(self, structure_fingerprint: str):
        """All ``(key, pipeline)`` pairs under one fingerprint tag.

        LRU order (oldest first), recency untouched.  The session layer
        uses this to spill the current head's warm pipelines to disk at
        checkpoint time and to rekey after a lineage restore.
        """
        return [
            (key, pipeline)
            for key, pipeline in self._entries.items()
            if key[0] == structure_fingerprint
        ]

    def invalidate(self, structure_fingerprint: Optional[str] = None) -> int:
        """Drop entries for one fingerprint (or everything); return count."""
        if structure_fingerprint is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        stale = [
            key for key in self._entries if key[0] == structure_fingerprint
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "retained_fingerprints": len(self._retained),
        }
