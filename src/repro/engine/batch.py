"""The legacy batch query API — now a thin shim over :mod:`repro.session`.

.. deprecated::
    Use :class:`repro.session.Database`: ``db.query(...).answers()``
    returns the unified :class:`~repro.session.answers.Answers` handle
    (sync *and* async), and ``db.insert_fact()/db.remove_fact()`` keep
    eligible cached plans fresh instead of invalidating everything.

:class:`QueryBatch` delegates its state — pipeline cache, shared
colored-graph templates, worker pool, staleness tracking — to an owned
:class:`~repro.session.database.Database`, so both front-ends share one
implementation; only the surface differs.  :class:`ResultHandle` *is*
an :class:`~repro.session.answers.Answers` (a subclass kept for the
legacy constructor signature and name), so handle semantics — lazy
branch-order merge, ``StaleResultError`` pinning,
``CancelledResultError`` after cancel — are literally the same object
behavior.
"""

from __future__ import annotations

import warnings
from typing import Dict, Hashable, Optional, Sequence, Tuple, Union

from repro.core.pipeline import Pipeline
from repro.engine.cache import CacheKey
from repro.engine.pool import WorkerPool
from repro.errors import EngineError
from repro.fo.syntax import Formula, Var
from repro.session.answers import DEFAULT_PAGE_SIZE, Answers
from repro.session.backends import resolve_backend
from repro.session.database import Database
from repro.structures.structure import Structure

Element = Hashable
Answer = Tuple[Element, ...]

__all__ = ["DEFAULT_PAGE_SIZE", "QueryBatch", "ResultHandle"]


class ResultHandle(Answers):
    """Paged / streamed access to one submitted query's answers.

    Kept as a named subclass of the unified
    :class:`~repro.session.answers.Answers` handle so existing imports,
    ``isinstance`` checks, and the pre-session constructor signature
    (``mode=`` instead of ``backend=``) keep working.  Unlike session
    handles — which pin their version and keep streaming byte-
    identically across commits — this facade keeps the historical
    contract: *any* mutation of the underlying database (an in-place
    structure change, or a session commit reported by
    ``version_source``) makes every later access raise
    :class:`repro.errors.StaleResultError`.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        skip_mode: str = "lazy",
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        spec_key: Optional[tuple] = None,
        executor=None,
        pool: Optional[WorkerPool] = None,
        chunk_rows: Optional[int] = None,
        transport: Optional[str] = None,
        version_source=None,
    ):
        super().__init__(
            pipeline,
            backend=resolve_backend(mode),
            skip_mode=skip_mode,
            workers=workers,
            spec_key=spec_key,
            executor=executor,
            pool=pool,
            chunk_rows=chunk_rows,
            transport=transport,
            version_source=version_source,
            stale_policy="raise",
        )


class QueryBatch:
    """Share one structure's preprocessing across many queries.

    .. deprecated:: Use :class:`repro.session.Database`.
    """

    def __init__(
        self,
        structure: Structure,
        eps: float = 0.5,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        skip_mode: str = "lazy",
        cache_capacity: int = 64,
        share_graphs: bool = True,
        executor=None,
        _warn_deprecated: bool = True,
    ):
        if _warn_deprecated:
            warnings.warn(
                "QueryBatch is deprecated; use repro.session.Database — "
                "db.query(...).answers() is the unified handle",
                DeprecationWarning,
                stacklevel=2,
            )
        if mode is not None:
            resolve_backend(mode)  # fail fast on unknown modes
        # maintain=False: this facade has no update API — mutations reach
        # it externally, where the fingerprint-keyed invalidation (the
        # legacy contract) applies; skipping maintainer setup keeps
        # submit() costs identical to the pre-session engine.
        self._db = Database(
            structure,
            eps=eps,
            workers=workers,
            skip_mode=skip_mode,
            cache_capacity=cache_capacity,
            share_graphs=share_graphs,
            maintain=False,
            guard_writes=False,
        )
        self.mode = mode
        # Legacy escape hatch: a caller-supplied concurrent.futures
        # executor overrides the owned pool for every handle.
        self.executor = executor

    # -- delegated session state ---------------------------------------

    @property
    def database(self) -> Database:
        """The session object this batch fronts."""
        return self._db

    @property
    def structure(self) -> Structure:
        return self._db.structure

    @property
    def eps(self) -> float:
        return self._db.eps

    @property
    def workers(self) -> Optional[int]:
        return self._db.workers

    @property
    def skip_mode(self) -> str:
        return self._db.skip_mode

    @property
    def share_graphs(self) -> bool:
        return self._db.share_graphs

    @property
    def pool(self) -> WorkerPool:
        return self._db.pool

    @property
    def cache(self):
        return self._db.cache

    @property
    def structure_fingerprint(self) -> str:
        return self._db.structure_fingerprint

    def invalidate(self) -> None:
        """Drop every cached pipeline and graph template."""
        self._db.invalidate()

    # -- shared preprocessing ------------------------------------------

    def prepare(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
    ) -> Tuple[Pipeline, CacheKey]:
        """The cached pipeline for a query (building it on a miss)."""
        return self._db._prepare(query, order=order)

    # -- submission ----------------------------------------------------

    def submit(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        skip_mode: Optional[str] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        chunk_rows: Optional[int] = None,
        transport: Optional[str] = None,
    ) -> ResultHandle:
        """Prepare (or reuse) the pipeline and hand back a result handle."""
        self._check_open()
        pipeline, key = self.prepare(query, order=order)
        return ResultHandle(
            pipeline,
            skip_mode=skip_mode or self._db.skip_mode,
            workers=workers if workers is not None else self._db.workers,
            mode=mode if mode is not None else self.mode,
            spec_key=key,
            executor=self.executor,
            pool=self._db.pool if self.executor is None else None,
            chunk_rows=chunk_rows,
            transport=transport,
            # Deprecation shim: session commits (which fork the head
            # rather than bump this pipeline's structure) must still
            # raise StaleResultError on this legacy facade.
            version_source=self._db._head_version,
        )

    def count(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> int:
        """Convenience: count without keeping a handle around.

        Exactly :func:`repro.core.counting.count_answers`, computed by
        the parallel engine when the counting cost model says it pays.
        """
        return self.submit(
            query, order=order, workers=workers, mode=mode
        ).count()

    def stats(self) -> Dict[str, int]:
        """Cache observability (pipeline cache + graph templates + pool)."""
        return self._db.stats()

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._db.closed

    def _check_open(self) -> None:
        if self._db.closed:
            raise EngineError("this QueryBatch is closed")

    def close(self) -> None:
        """Shut down the owned worker pool.  Idempotent.

        Existing handles keep any answers they already pulled; new
        submissions (and new parallel pulls through the pool) raise
        :class:`repro.errors.EngineError`.  A caller-supplied
        ``executor=`` is *not* shut down — its lifecycle belongs to the
        caller.
        """
        self._db.close()

    def __enter__(self) -> "QueryBatch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
