"""The batch query API: one structure, many queries.

:class:`QueryBatch` amortizes preprocessing across every query asked of
one structure:

* **pipeline cache** — built pipelines are memoized under
  ``(structure fingerprint, normalized formula, order, eps)``
  (:mod:`repro.engine.cache`), so resubmitting a query is O(1);
* **shared colored graphs** — the cluster enumeration of Steps 3-4
  depends only on ``(arity, link radius)``, not on the query, so the
  batch builds one template graph per such pair and hands each pipeline
  a clone (:meth:`repro.core.colored_graph.ColoredGraph.clone`);
* **branch-parallel execution** — submissions return a
  :class:`ResultHandle` whose answers are produced by
  :mod:`repro.engine.executor` under the cost-model heuristic.

Handles are *stale-safe*: every access revalidates the structure's
mutation counter, so a handle created before an insertion/deletion (for
example through :class:`repro.core.dynamic.DynamicQuery` sharing the same
structure) raises :class:`repro.errors.StaleResultError` instead of
serving pre-update answers.

The batch owns a long-lived :class:`repro.engine.pool.WorkerPool`:
lazily started on the first parallel submission, warm-reused by every
later one, restarted transparently when a process worker dies, and shut
down by :meth:`QueryBatch.close` (or the ``with`` statement).  Callers
that managed their own executor before PR 2 can still pass ``executor=``;
it takes precedence over the owned pool.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.colored_graph import ColoredGraph, build_colored_graph
from repro.core.enumeration import trivial_answers
from repro.core.pipeline import Pipeline
from repro.core.testing import test_answer
from repro.engine.cache import CacheKey, PipelineCache
from repro.engine.executor import parallel_count, run_branches
from repro.engine.pool import WorkerPool
from repro.errors import CancelledResultError, EngineError, StaleResultError
from repro.fo.syntax import Formula, Var
from repro.structures.serialize import fingerprint
from repro.structures.structure import Structure

Element = Hashable
Answer = Tuple[Element, ...]

DEFAULT_PAGE_SIZE = 100


class ResultHandle:
    """Paged / streamed access to one submitted query's answers.

    Answers materialize in branch-index order (shards in slice order),
    so the full sequence is identical to the serial enumeration order.
    The *merge* is lazy — pages pull only as many chunks as they need.
    In serial mode that means partial consumption only pays for the
    branches it touched; in thread/process mode every work unit is
    submitted to the pool on first access (they compute concurrently),
    and laziness governs only when results are drained.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        skip_mode: str = "lazy",
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        spec_key: Optional[tuple] = None,
        executor=None,
        pool: Optional[WorkerPool] = None,
    ):
        self._pipeline = pipeline
        self._structure = pipeline.structure
        self._version = pipeline.structure.version
        self._skip_mode = skip_mode
        self._workers = workers
        self._mode = mode
        self._spec_key = spec_key
        self._executor = executor
        self._pool = pool
        self._answers: List[Answer] = []
        self._source: Optional[Iterator[List[Answer]]] = None
        self._count: Optional[int] = None
        self._done = False
        self._cancelled = False

    # -- liveness ------------------------------------------------------

    def _check_live(self) -> None:
        if self._cancelled:
            raise CancelledResultError("this result handle was cancelled")
        if self._structure.version != self._version:
            raise StaleResultError(
                "the structure changed after this handle was created "
                f"(version {self._version} -> {self._structure.version}); "
                "re-submit the query"
            )

    @property
    def stale(self) -> bool:
        return self._structure.version != self._version

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # -- lazy production -----------------------------------------------

    def _ensure_source(self) -> None:
        if self._source is not None or self._done:
            return
        if self._pipeline.trivial is not None:
            self._source = iter([list(trivial_answers(self._pipeline))])
        else:
            self._source = run_branches(
                self._pipeline,
                workers=self._workers,
                mode=self._mode,
                skip_mode=self._skip_mode,
                spec_key=self._spec_key,
                executor=self._executor,
                pool=self._pool,
            )

    def _pull(self, needed: Optional[int]) -> None:
        """Materialize branch chunks until ``needed`` answers (or all)."""
        self._ensure_source()
        while not self._done and (
            needed is None or len(self._answers) < needed
        ):
            assert self._source is not None
            try:
                chunk = next(self._source)
            except StopIteration:
                self._done = True
                self._source = None
            except BaseException:
                # A worker failure mid-production leaves a dead generator
                # and an unusable prefix; reset so a retry re-executes
                # from scratch instead of serving partial answers as if
                # they were complete.
                self._source = None
                self._answers = []
                raise
            else:
                self._answers.extend(chunk)

    # -- the public access paths ---------------------------------------

    def page(self, index: int, size: int = DEFAULT_PAGE_SIZE) -> List[Answer]:
        """The ``index``-th page (0-based) of ``size`` answers."""
        if index < 0 or size < 1:
            raise EngineError(
                f"bad page request (index={index}, size={size})"
            )
        self._check_live()
        self._pull((index + 1) * size)
        return self._answers[index * size : (index + 1) * size]

    def stream(self) -> Iterator[Answer]:
        """Yield answers one by one; staleness is re-checked per answer."""
        position = 0
        while True:
            self._check_live()
            if position < len(self._answers):
                yield self._answers[position]
                position += 1
                continue
            if self._done:
                return
            before = len(self._answers)
            self._pull(before + 1)
            if len(self._answers) == before and self._done:
                return

    def all(self) -> List[Answer]:
        """Materialize and return every answer (serial order)."""
        self._check_live()
        self._pull(None)
        return list(self._answers)

    def count(self) -> int:
        """``|q(A)|`` via the counting algorithm (no enumeration).

        Per-branch counts run through the engine (cost-model decided,
        over the batch pool when one is attached); the result is exactly
        :func:`repro.core.counting.count_answers`.  Cached: the handle is
        pinned to one structure version (any mutation raises), so the
        count can never go stale.  After :meth:`cancel` this raises
        :class:`repro.errors.CancelledResultError` — it never computes
        from, or returns, a partially pulled handle.
        """
        self._check_live()
        if self._count is None:
            self._count = parallel_count(
                self._pipeline,
                workers=self._workers,
                mode=self._mode,
                spec_key=self._spec_key,
                executor=self._executor,
                pool=self._pool,
            )
        return self._count

    def test(self, candidate: Sequence[Element]) -> bool:
        """Constant-time membership test against this query."""
        self._check_live()
        return test_answer(self._pipeline, candidate)

    def cancel(self) -> None:
        """Stop producing; subsequent access raises CancelledResultError."""
        if self._cancelled:
            return
        self._cancelled = True
        source, self._source = self._source, None
        if source is not None and hasattr(source, "close"):
            source.close()

    def __iter__(self) -> Iterator[Answer]:
        return self.stream()


class QueryBatch:
    """Share one structure's preprocessing across many queries."""

    def __init__(
        self,
        structure: Structure,
        eps: float = 0.5,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        skip_mode: str = "lazy",
        cache_capacity: int = 64,
        share_graphs: bool = True,
        executor=None,
    ):
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.structure = structure
        self.eps = eps
        self.workers = workers
        self.mode = mode
        self.skip_mode = skip_mode
        self.share_graphs = share_graphs
        # Legacy escape hatch: a caller-supplied concurrent.futures
        # executor overrides the owned pool for every handle.
        self.executor = executor
        # The batch-owned worker pool: lazily started (serial workloads
        # never create OS resources), warm-reused across submits, and
        # restarted when a process worker dies.  close() shuts it down.
        self.pool = WorkerPool(workers)
        self._closed = False
        self.cache = PipelineCache(cache_capacity)
        self._graph_templates: Dict[Tuple[int, int], ColoredGraph] = {}
        self._fingerprint = fingerprint(structure)
        self._version = structure.version

    # -- structure staleness -------------------------------------------

    @property
    def structure_fingerprint(self) -> str:
        self._refresh()
        return self._fingerprint

    def _refresh(self) -> None:
        """Detect mutations and invalidate every derived cache."""
        if self.structure.version == self._version:
            return
        stale_fingerprint = self._fingerprint
        self._fingerprint = fingerprint(self.structure)
        self._version = self.structure.version
        self._graph_templates.clear()
        self.cache.invalidate(stale_fingerprint)

    def invalidate(self) -> None:
        """Drop every cached pipeline and graph template."""
        self._graph_templates.clear()
        self.cache.invalidate()
        self._fingerprint = fingerprint(self.structure)
        self._version = self.structure.version

    # -- shared preprocessing ------------------------------------------

    def _graph_factory(
        self, structure, evaluator, arity, link_radius, max_nodes=5_000_000
    ):
        """Clone-from-template colored graph construction."""
        key = (arity, link_radius)
        template = self._graph_templates.get(key)
        if template is None:
            template = build_colored_graph(
                structure, evaluator, arity, link_radius, max_nodes=max_nodes
            )
            self._graph_templates[key] = template
        return template.clone()

    def prepare(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
    ) -> Tuple[Pipeline, CacheKey]:
        """The cached pipeline for a query (building it on a miss)."""
        self._refresh()
        return self.cache.get_or_build(
            self.structure,
            query,
            order=order,
            eps=self.eps,
            structure_fingerprint=self._fingerprint,
            graph_factory=self._graph_factory if self.share_graphs else None,
        )

    # -- submission ----------------------------------------------------

    def submit(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        skip_mode: Optional[str] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> ResultHandle:
        """Prepare (or reuse) the pipeline and hand back a result handle."""
        self._check_open()
        pipeline, key = self.prepare(query, order=order)
        return ResultHandle(
            pipeline,
            skip_mode=skip_mode or self.skip_mode,
            workers=workers if workers is not None else self.workers,
            mode=mode if mode is not None else self.mode,
            spec_key=key,
            executor=self.executor,
            pool=self.pool if self.executor is None else None,
        )

    def count(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> int:
        """Convenience: count without keeping a handle around.

        Exactly :func:`repro.core.counting.count_answers`, computed by
        the parallel engine when the counting cost model says it pays.
        """
        self._check_open()
        pipeline, key = self.prepare(query, order=order)
        return parallel_count(
            pipeline,
            workers=workers if workers is not None else self.workers,
            mode=mode if mode is not None else self.mode,
            spec_key=key,
            executor=self.executor,
            pool=self.pool if self.executor is None else None,
        )

    def stats(self) -> Dict[str, int]:
        """Cache observability (pipeline cache + graph templates + pool)."""
        stats = self.cache.stats()
        stats["graph_templates"] = len(self._graph_templates)
        stats.update(
            {f"pool_{key}": value for key, value in self.pool.stats().items()}
        )
        return stats

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this QueryBatch is closed")

    def close(self) -> None:
        """Shut down the owned worker pool.  Idempotent.

        Existing handles keep any answers they already pulled; new
        submissions (and new parallel pulls through the pool) raise
        :class:`repro.errors.EngineError`.  A caller-supplied
        ``executor=`` is *not* shut down — its lifecycle belongs to the
        caller.
        """
        if self._closed:
            return
        self._closed = True
        self.pool.close()

    def __enter__(self) -> "QueryBatch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
