"""The sharded database front-end: scatter at build, gather at query.

:class:`ShardedDatabase` partitions its structure into regions (unions
of whole Gaifman components, :mod:`repro.shard.partition`), builds each
query *once* as a localization template over the full structure, derives
one pipeline per region from that template, and assembles the derived
pipelines into a merged pipeline that is — provably, and enforced by the
differential suite — byte-identical to a cold global build.  Queries
then execute scatter-gather (:mod:`repro.shard.backend`): per-shard
branch streams are merged lazily into the exact global answer order, or
handed to the parallel engine over the merged pipeline.

Sharing the *template* is what makes per-region pipelines sound:
localization evaluates sentences, materializes derived unary predicates,
and fixes counting totals against the full structure; deriving reuses
those verbatim and only rebuilds the structure-shaped tail (colored
graph, colors, branch lists) per region.  A query whose localized form
still compares against a structure-wide total that was *not* preserved
as a derived set cannot be sharded; :func:`shard_blockers` detects this
and the plan silently falls back to an ordinary unsharded pipeline —
wrong answers are never an option.

Updates go through :meth:`ShardedDatabase.apply` with the session
commit's exact semantics: validation up front, net effects, then a
pre-reach / apply-once / post-reach / refresh maintenance pass over
every maintainable cached plan, with the changeset *split by element
ownership* so each region's substructure is updated in place.  A fact
whose elements span two shards is a **bridge** — it welds Gaifman
components together — and triggers a targeted merge of the owning
shards before anything is answered again.
"""

from __future__ import annotations

import threading
from typing import (
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.dynamic import (
    PipelineMaintainer,
    apply_ops,
    maintenance_blockers,
    net_effects,
)
from repro.core.pipeline import Pipeline
from repro.core.testing import test_answer
from repro.engine.pool import WorkerPool
from repro.errors import EngineError
from repro.fo import coerce_formula
from repro.fo.syntax import CountCmp, Formula, TotalCount, Var, subformulas
from repro.session.answers import Answers
from repro.session.transaction import Changeset, CommitResult
from repro.shard.backend import ShardGatherBackend
from repro.shard.partition import RegionPartitioner, ShardLayout, merge_shards
from repro.structures.serialize import fingerprint
from repro.structures.structure import Structure

Element = Hashable


def shard_blockers(pipeline: Pipeline) -> List[str]:
    """Why a localized query cannot execute per-shard (empty = shardable).

    The one genuinely global quantity a localized formula can retain is
    a counting atom compared against a structure-wide total
    (``|U ∩ N_r(x)| >= |U|``-style).  When localization preserved ``U``
    as a derived unary set, every shard evaluator reads the *global* set
    and per-shard execution stays exact; when ``U`` is a base relation
    the shard evaluator would count only shard-local members and
    silently diverge — so the plan must stay unsharded.
    """
    blockers: List[str] = []
    localized = pipeline.localized
    for node in subformulas(localized.formula):
        if (
            isinstance(node, CountCmp)
            and isinstance(node.rhs, TotalCount)
            and node.rhs.unary not in localized.extra_unary
        ):
            blockers.append(
                f"counting atom compares against the structure-wide total "
                f"|{node.rhs.unary}| of a base relation; per-shard "
                f"evaluation would count shard-local members only"
            )
    return blockers


class _ShardPlan:
    """One query's sharded execution state.

    ``canonical`` records that the shard graphs (and the merged graph's
    node numbering) are exactly what a cold build over the current
    structure would produce — the precondition for the stream gather's
    rank-keyed merge.  In-place maintenance keeps the *merged* pipeline
    correct but renumbers nothing, so it clears ``canonical`` and drops
    the shard pipelines; subsequent queries run through the maintained
    merged pipeline until a fresh plan is built.
    """

    __slots__ = (
        "formula",
        "template",
        "shards",
        "merged",
        "canonical",
        "blockers",
        "maintainable",
        "maintainer",
    )

    def __init__(
        self,
        formula: Formula,
        template: Optional[Pipeline],
        shards: Optional[List[Pipeline]],
        merged: Pipeline,
        canonical: bool,
        blockers: Tuple[str, ...],
    ):
        self.formula = formula
        self.template = template
        self.shards = shards
        self.merged = merged
        self.canonical = canonical
        self.blockers = blockers
        self.maintainable = (
            merged.trivial is None
            and not maintenance_blockers(merged)
            and merged.localized.sentences_evaluated == 0
        )
        self.maintainer: Optional[PipelineMaintainer] = None


class ShardedQuery:
    """One prepared query against a :class:`ShardedDatabase`."""

    def __init__(self, database: "ShardedDatabase", formula: Formula,
                 order: Optional[Tuple[Var, ...]], key):
        self._db = database
        self._formula = formula
        self._order = order
        self._key = key
        self._last_answers: Optional[Answers] = None

    @property
    def formula(self) -> Formula:
        return self._formula

    @property
    def arity(self) -> int:
        return self._db._plan_state(self._key).merged.arity

    def answers(
        self,
        limit: Optional[int] = None,
        project_columns: Optional[Sequence[int]] = None,
    ) -> Answers:
        """A lazy handle over the sharded execution's answer stream.

        The stream is byte-identical to unsharded serial enumeration;
        ``limit`` bounds it to a prefix.  The handle raises
        :class:`repro.errors.StaleResultError` if the database is
        mutated before it is fully materialized.
        """
        db = self._db
        state = db._plan_state(self._key)
        handle = Answers(
            state.merged,
            backend=ShardGatherBackend(
                state, db.structure.order.rank, db.gather
            ),
            skip_mode=db._skip_mode,
            workers=db._workers,
            pool=db.pool,
            version_source=lambda: db.structure.version,
            row_budget=limit,
            project_columns=(
                tuple(project_columns) if project_columns is not None else None
            ),
        )
        self._last_answers = handle
        return handle

    def count(self) -> int:
        """``|q(A)|`` — per-shard branch counts summed where exact."""
        return self.answers().count()

    def test(self, candidate: Sequence[Element]) -> bool:
        """Constant-time membership via the merged pipeline."""
        return test_answer(
            self._db._plan_state(self._key).merged, tuple(candidate)
        )

    def explain(self) -> Dict[str, object]:
        """The plan's sharded layout plus, after a run, what actually
        moved: per-shard row counts from the gather's transfer stats."""
        db = self._db
        state = db._plan_state(self._key)
        report: Dict[str, object] = {
            "formula": str(self._formula),
            "gather": db.gather,
            "sharded": state.shards is not None,
            "canonical": state.canonical,
            "shard_sizes": list(db.layout.sizes()),
            "shard_blockers": list(state.blockers),
            "maintainable": state.maintainable,
            "branches": (
                len(state.merged.branches)
                if state.merged.trivial is None
                else 0
            ),
        }
        handle = self._last_answers
        if handle is not None:
            stats = handle.transport_stats
            if stats is not None and stats.chunks:
                report["runtime"] = stats.as_dict()
                report["backend_used"] = handle.backend_used
        return report

    def __repr__(self) -> str:
        return f"ShardedQuery({str(self._formula)!r})"


class ShardedDatabase:
    """Region-sharded structures with scatter-gather query execution.

    ``shards`` is the target shard count (see
    :class:`repro.shard.partition.RegionPartitioner`); ``gather`` picks
    the default gather strategy (``"stream"`` merges per-shard answer
    streams lazily in-process, ``"engine"`` hands the merged pipeline to
    the cost-model-driven parallel engine).  The front-end owns its
    structure: mutate it only through :meth:`apply` /
    :meth:`insert_fact` / :meth:`remove_fact`.
    """

    def __init__(
        self,
        structure: Structure,
        shards: int = 4,
        eps: float = 0.5,
        workers: Optional[int] = None,
        skip_mode: str = "lazy",
        gather: str = "stream",
        partitioner: Optional[RegionPartitioner] = None,
    ):
        if gather not in ("stream", "engine"):
            raise EngineError(
                f"gather must be 'stream' or 'engine', got {gather!r}"
            )
        self._structure = structure
        self._eps = eps
        self._workers = workers
        self._skip_mode = skip_mode
        self.gather = gather
        self._partitioner = partitioner or RegionPartitioner(shards)
        self._layout = self._partitioner.partition(structure)
        self._substructures = [
            structure.induced_substructure(shard)
            for shard in self._layout.shards
        ]
        self._plans: Dict[object, _ShardPlan] = {}
        self._pool: Optional[WorkerPool] = None
        self._lock = threading.RLock()
        self._closed = False

    # -- introspection -------------------------------------------------

    @property
    def structure(self) -> Structure:
        return self._structure

    @property
    def layout(self) -> ShardLayout:
        return self._layout

    @property
    def substructures(self) -> Tuple[Structure, ...]:
        return tuple(self._substructures)

    @property
    def pool(self) -> WorkerPool:
        """The lazily-started worker pool (``gather="engine"`` only needs
        it when the cost model actually picks a parallel mode)."""
        with self._lock:
            if self._pool is None:
                self._pool = WorkerPool(self._workers)
            return self._pool

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "shards": len(self._layout),
                "shard_sizes": list(self._layout.sizes()),
                "components": self._layout.components,
                "cached_plans": len(self._plans),
                "canonical_plans": sum(
                    1 for plan in self._plans.values() if plan.canonical
                ),
                "version": self._structure.version,
            }

    # -- querying ------------------------------------------------------

    def query(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
    ) -> ShardedQuery:
        """Prepare (or cache-hit) a sharded plan for ``query``."""
        self._check_open()
        formula = coerce_formula(query)
        order_vars = None
        if order is not None:
            order_vars = tuple(
                var if isinstance(var, Var) else Var(var) for var in order
            )
        key = (str(formula), order_vars)
        with self._lock:
            if key not in self._plans:
                self._plans[key] = self._build_plan(formula, order_vars)
        return ShardedQuery(self, formula, order_vars, key)

    def count(self, query: Union[Formula, str]) -> int:
        return self.query(query).count()

    def test(
        self, query: Union[Formula, str], candidate: Sequence[Element]
    ) -> bool:
        return self.query(query).test(candidate)

    def _plan_state(self, key) -> _ShardPlan:
        with self._lock:
            state = self._plans.get(key)
            if state is None:
                formula = coerce_formula(key[0])
                state = self._build_plan(formula, key[1])
                self._plans[key] = state
            return state

    def _build_plan(
        self, formula: Formula, order: Optional[Tuple[Var, ...]]
    ) -> _ShardPlan:
        template = Pipeline(
            self._structure,
            formula,
            order=order,
            eps=self._eps,
            build_graph=False,
        )
        if template.trivial is not None:
            # Localization collapsed the query to a constant; there is no
            # graph to shard and the template already answers everything.
            return _ShardPlan(formula, None, None, template, False, ())
        blockers = tuple(shard_blockers(template))
        if blockers or not self._layout.shards:
            merged = Pipeline(
                self._structure, formula, order=order, eps=self._eps
            )
            return _ShardPlan(formula, None, None, merged, False, blockers)
        shard_pipelines = [
            template.derive(substructure)
            for substructure in self._substructures
        ]
        merged = template.merge(self._structure, shard_pipelines)
        return _ShardPlan(
            formula, template, shard_pipelines, merged, True, ()
        )

    # -- updates -------------------------------------------------------

    def insert_fact(self, relation: str, *elements: Element) -> CommitResult:
        return self.apply([(True, relation, tuple(elements))])

    def remove_fact(self, relation: str, *elements: Element) -> CommitResult:
        return self.apply([(False, relation, tuple(elements))])

    def apply(self, changes) -> CommitResult:
        """Atomically apply a changeset with shard-aware maintenance.

        Operations are validated up front (unknown relation, arity,
        domain membership) and netted; the effective ops are split by
        element ownership and applied to the full structure *and* each
        owning region's substructure.  Ops whose elements span shards
        are bridges: the owning shards are merged in the layout and all
        cached plans rebuild cold.  Otherwise every maintainable cached
        plan is refreshed with one local-recomputation pass (the exact
        session-commit sequence), its shard graphs are retired
        (``canonical`` drops — the maintained merged pipeline answers
        until a fresh plan is built), and non-maintainable plans are
        evicted.
        """
        self._check_open()
        if isinstance(changes, Changeset):
            source_ops = changes.ops
        else:
            source_ops = changes
        validated = Changeset(structure=self._structure, ops=source_ops)
        ops = list(validated.ops)
        with self._lock:
            version_before = self._structure.version
            fingerprint_before = fingerprint(self._structure)
            effective = net_effects(self._structure, ops)
            if not effective:
                return CommitResult(
                    len(ops),
                    0,
                    version_before,
                    version_before,
                    fingerprint_before,
                    fingerprint_before,
                )
            per_shard: Dict[int, List] = {}
            bridges: List[frozenset] = []
            for insert, relation, elements in effective:
                touched = self._layout.shards_of(elements)
                if len(touched) > 1:
                    bridges.append(touched)
                else:
                    for index in touched:
                        per_shard.setdefault(index, []).append(
                            (insert, relation, elements)
                        )
            if bridges:
                maintained = self._commit_with_bridges(effective, bridges)
            else:
                maintained = self._commit_in_place(effective, per_shard)
            return CommitResult(
                len(ops),
                len(effective),
                version_before,
                self._structure.version,
                fingerprint_before,
                fingerprint(self._structure),
                maintained_plans=maintained,
            )

    def _commit_with_bridges(
        self, effective, bridges: List[frozenset]
    ) -> int:
        """A cross-shard fact merges the owning shards; plans go cold.

        The merged region is rebuilt from the post-commit structure, so
        the union-of-components invariant is restored by construction —
        sharded execution never silently answers across a cut it cannot
        see.
        """
        apply_ops(self._structure, effective)
        self._layout = merge_shards(
            self._layout, bridges, self._structure.order.rank
        )
        self._substructures = [
            self._structure.induced_substructure(shard)
            for shard in self._layout.shards
        ]
        self._plans.clear()
        return 0

    def _commit_in_place(self, effective, per_shard: Dict[int, List]) -> int:
        """The session commit's pre-reach/apply/post-reach/refresh pass,
        extended with per-region substructure application."""
        maintainers: List[_ShardPlan] = []
        evict = []
        for key, plan in self._plans.items():
            if plan.maintainable:
                if plan.maintainer is None:
                    plan.maintainer = PipelineMaintainer(plan.merged)
                maintainers.append(plan)
            else:
                evict.append(key)
        touched = tuple(
            {element for _, _, elements in effective for element in elements}
        )
        regions = [plan.maintainer.reach(touched) for plan in maintainers]
        apply_ops(self._structure, effective)
        for index, ops in per_shard.items():
            apply_ops(self._substructures[index], ops)
        for plan, region in zip(maintainers, regions):
            plan.maintainer.refresh(
                touched, region | plan.maintainer.reach(touched)
            )
            # Maintenance renumbers nothing: the merged graph stays
            # correct but is no longer the cold build's numbering, and
            # the (unmaintained) shard graphs are stale — retire them.
            plan.shards = None
            plan.template = None
            plan.canonical = False
        for key in evict:
            del self._plans[key]
        return len(maintainers)

    # -- layout management ---------------------------------------------

    def repartition(self, shards: Optional[int] = None) -> ShardLayout:
        """Re-run the partitioner against the current structure.

        Recomputes components (removals may have split some), rebuilds
        every substructure, and drops all cached plans — the next query
        per key builds fresh canonical shard pipelines.
        """
        self._check_open()
        with self._lock:
            if shards is not None:
                self._partitioner = RegionPartitioner(
                    shards, self._partitioner.radius
                )
            self._layout = self._partitioner.partition(self._structure)
            self._substructures = [
                self._structure.induced_substructure(shard)
                for shard in self._layout.shards
            ]
            self._plans.clear()
            return self._layout

    # -- lifecycle -----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this ShardedDatabase is closed")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._plans.clear()
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedDatabase(|A|={self._structure.cardinality}, "
            f"shards={len(self._layout)}, plans={len(self._plans)})"
        )
