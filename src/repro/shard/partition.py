"""Region partitioning: split a structure into shard-sized regions.

Gaifman locality is what makes sharding *sound* rather than merely
convenient: the enumeration pipeline only ever inspects ``r``-balls and
linking distances, so two elements in different connected components of
the Gaifman graph can never interact — not in a cluster tuple, not in a
unit evaluation, not through an adjacency edge.  A connected component
is therefore the atomic unit of placement: any union of components is a
*region* whose induced substructure computes exactly the same nodes,
colors, and adjacency as the full structure restricted to it.

:class:`RegionPartitioner` packs components into a requested number of
shards with an LPT (longest processing time) bin-packer so shard sizes
stay balanced even when component sizes are skewed.  The partitioner is
radius-aware by construction: components sit at Gaifman distance
infinity from each other, so no query radius — however large — ever
requires elements from two shards in one ball, and no radius-dependent
region merging is needed.  Radius *does* matter once updates arrive: a
fact insertion whose elements live in different shards creates a bridge
(a new Gaifman edge between components), and
:meth:`repro.shard.ShardedDatabase.apply` reacts by merging the owning
shards via :func:`merge_shards` before answering again.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

from repro.errors import EngineError
from repro.structures.gaifman_graph import connected_components
from repro.structures.structure import Structure

Element = Hashable


class ShardLayout:
    """An assignment of every domain element to exactly one shard.

    ``shards`` holds each shard's elements in domain order (the order the
    induced substructure inherits); ``owner`` maps every element to its
    shard index.  Layouts are immutable — bridge handling produces a new
    layout via :func:`merge_shards`.
    """

    __slots__ = ("shards", "owner", "components")

    def __init__(
        self,
        shards: Sequence[Sequence[Element]],
        owner: Dict[Element, int],
        components: int,
    ):
        self.shards: Tuple[Tuple[Element, ...], ...] = tuple(
            tuple(shard) for shard in shards
        )
        self.owner = owner
        self.components = components

    def __len__(self) -> int:
        return len(self.shards)

    def shard_of(self, element: Element) -> int:
        try:
            return self.owner[element]
        except KeyError:
            raise EngineError(
                f"element {element!r} is not covered by this shard layout"
            ) from None

    def shards_of(self, elements: Iterable[Element]) -> FrozenSet[int]:
        """The set of shards an operation's elements touch."""
        return frozenset(self.shard_of(element) for element in elements)

    def sizes(self) -> Tuple[int, ...]:
        return tuple(len(shard) for shard in self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardLayout(shards={len(self.shards)}, "
            f"sizes={list(self.sizes())}, components={self.components})"
        )


class RegionPartitioner:
    """Pack Gaifman components into ``shards`` balanced regions.

    ``shards`` is a target, not a promise: a structure with fewer
    components than requested shards yields one shard per component
    (components are never split — that would put a cut through balls the
    pipeline must see whole).  ``radius`` is accepted for symmetry with
    the pipeline's query radius; because regions are unions of whole
    components, every radius is automatically respected and the value
    only participates in validation.
    """

    def __init__(self, shards: int = 4, radius: int = 0):
        if shards < 1:
            raise EngineError(f"shards must be >= 1, got {shards}")
        if radius < 0:
            raise EngineError(f"radius must be >= 0, got {radius}")
        self.shards = shards
        self.radius = radius

    def partition(self, structure: Structure) -> ShardLayout:
        """Deterministic layout: LPT over components, domain-order shards.

        Components are assigned largest-first to the least-loaded bin;
        ties (equal sizes, equal loads) break on domain rank and bin
        index, so the layout depends only on the structure's content.
        """
        components = connected_components(structure)
        if not components:
            return ShardLayout((), {}, 0)
        rank = structure.order.rank
        count = min(self.shards, len(components))
        ordered = sorted(
            components, key=lambda comp: (-len(comp), rank(comp[0]))
        )
        loads = [(0, index) for index in range(count)]
        heapq.heapify(loads)
        bins: List[List[Element]] = [[] for _ in range(count)]
        for component in ordered:
            load, index = heapq.heappop(loads)
            bins[index].extend(component)
            heapq.heappush(loads, (load + len(component), index))
        shards = tuple(
            tuple(sorted(elements, key=rank)) for elements in bins
        )
        owner: Dict[Element, int] = {}
        for index, shard in enumerate(shards):
            for element in shard:
                owner[element] = index
        return ShardLayout(shards, owner, len(components))


def merge_shards(
    layout: ShardLayout,
    groups: Iterable[Iterable[int]],
    rank,
) -> ShardLayout:
    """Merge the shard-index ``groups`` (bridged by an update) into one
    shard each.

    Union-find over shard indices: every group collapses onto its lowest
    member, surviving shards keep their relative order, and each merged
    shard's elements are re-sorted by ``rank`` so the induced
    substructure stays in domain order.  ``components`` is carried over
    as a stale upper bound — a repartition recomputes it exactly.
    """
    parent = list(range(len(layout.shards)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for group in groups:
        members = sorted(set(group))
        if not members:
            continue
        root = find(members[0])
        for other in members[1:]:
            other_root = find(other)
            root, other_root = min(root, other_root), max(root, other_root)
            parent[other_root] = root
    merged: Dict[int, List[Element]] = {}
    for index, shard in enumerate(layout.shards):
        merged.setdefault(find(index), []).extend(shard)
    shards = tuple(
        tuple(sorted(elements, key=rank))
        for _, elements in sorted(merged.items())
    )
    owner: Dict[Element, int] = {}
    for index, shard in enumerate(shards):
        for element in shard:
            owner[element] = index
    return ShardLayout(shards, owner, layout.components)
