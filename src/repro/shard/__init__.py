"""repro.shard — region-sharded structures with scatter-gather execution.

The sharding subsystem exploits the paper's own locality machinery for
data placement: connected components of the Gaifman graph are
interaction-free, so a structure splits into per-region substructures
whose derived pipelines jointly reproduce the global pipeline exactly.

Public surface:

* :class:`RegionPartitioner` / :class:`ShardLayout` — deterministic
  component packing (:mod:`repro.shard.partition`);
* :class:`ShardedDatabase` / :class:`ShardedQuery` — the session-style
  front-end with transactional, ownership-split updates
  (:mod:`repro.shard.database`);
* :class:`ShardGatherBackend` — the gather strategies
  (:mod:`repro.shard.backend`);
* :func:`shard_blockers` — why a query must stay unsharded.
"""

from repro.shard.backend import ShardGatherBackend
from repro.shard.database import ShardedDatabase, ShardedQuery, shard_blockers
from repro.shard.partition import RegionPartitioner, ShardLayout, merge_shards

__all__ = [
    "RegionPartitioner",
    "ShardLayout",
    "merge_shards",
    "ShardGatherBackend",
    "ShardedDatabase",
    "ShardedQuery",
    "shard_blockers",
]
