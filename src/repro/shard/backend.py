"""Scatter-gather execution over a sharded plan.

:class:`ShardGatherBackend` implements the session's
:class:`repro.session.backends.ExecutionBackend` protocol on top of a
:class:`repro.shard.database._ShardPlan`: the *scatter* already happened
at plan-build time (one derived pipeline per region), so the backend's
job is the *gather* — producing the exact global answer stream from the
per-shard pieces.

Two gather strategies:

``stream``
    Single-block branches are merged **without ever materializing a
    shard**: each shard contributes a lazy iterator over its branch
    list, and a ``heapq.merge`` keyed by the domain rank of the node's
    seed element interleaves them into precisely the merged pipeline's
    node order (seeds are unique to one shard, so there are no
    cross-shard ties; within a shard, list order is already
    nondecreasing in seed rank).  Multi-block branches — whose answers
    may combine clusters from *different* shards — run on the merged
    pipeline, which exists for exactly this purpose.  Counting uses the
    same split: per-shard branch counts sum exactly for single-block
    branches (the lists partition), merged counts cover the rest.

``engine``
    Delegates the merged pipeline to the cost-model-driven ``auto``
    backend, which may fan branches across the worker pool with the
    shared-memory chunk mailbox streaming results back.

Either way the output is byte-identical to the unsharded serial
enumeration; the differential suite in ``tests/shard`` enforces it
configuration by configuration.  When the plan is no longer canonical
(its shard graphs went stale after an in-place maintenance pass) both
strategies fall back to the merged pipeline, which *is* maintained.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterator, List, Tuple

from repro.core.counting import count_branch_at
from repro.core.enumeration import enumerate_branch
from repro.engine.executor import resolve_chunk_rows
from repro.errors import EngineError
from repro.session.backends import AUTO, ExecutionPlan

Element = Hashable
Answer = Tuple[Element, ...]

# Sentinel shard index for rows produced by the merged pipeline
# (multi-block branches, whose answers span shards).
MERGED = -1


class ShardGatherBackend:
    """Gather per-shard branch streams into the global answer order."""

    def __init__(self, state, rank, gather: str = "stream"):
        if gather not in ("stream", "engine"):
            raise EngineError(
                f"gather must be 'stream' or 'engine', got {gather!r}"
            )
        self.name = f"shard-{gather}"
        self._state = state
        self._rank = rank
        self._gather = gather

    # -- protocol ------------------------------------------------------

    def run(self, plan: ExecutionPlan) -> Iterator[List[Answer]]:
        if not self._streamable(plan):
            return AUTO.run(plan)
        plan.used_mode = "shard-stream"
        plan.used_transport = "none"
        return self._stream(plan)

    def count(self, plan: ExecutionPlan) -> int:
        if not self._streamable(plan):
            return AUTO.count(plan)
        plan.used_count_mode = "shard-sum"
        merged = self._state.merged
        shards = self._state.shards
        total = 0
        for index, branch in enumerate(merged.branches):
            if len(branch.lists) == 1:
                total += sum(
                    count_branch_at(shard, index) for shard in shards
                )
            else:
                total += count_branch_at(merged, index)
        return total

    # -- internals -----------------------------------------------------

    def _streamable(self, plan: ExecutionPlan) -> bool:
        state = self._state
        if self._gather != "stream":
            return False
        if state.shards is None or not state.canonical:
            return False
        # The plan the session built must be over our merged pipeline;
        # anything else (a foreign pipeline) goes through the engine.
        return plan.pipeline is state.merged

    def _stream(self, plan: ExecutionPlan) -> Iterator[List[Answer]]:
        merged = self._state.merged
        chunk_rows = resolve_chunk_rows(merged, plan.chunk_rows)
        columns = plan.project_columns
        budget = plan.row_budget
        stats = plan.transfer_stats
        produced = 0
        for index in range(len(merged.branches)):
            chunk: List[Answer] = []
            shard_rows: Dict[int, int] = {}
            for answer, shard_index in self._branch_stream(
                index, plan.skip_mode
            ):
                if columns is not None:
                    answer = tuple(answer[i] for i in columns)
                chunk.append(answer)
                shard_rows[shard_index] = shard_rows.get(shard_index, 0) + 1
                produced += 1
                if len(chunk) >= chunk_rows:
                    self._account(stats, shard_rows)
                    yield chunk
                    chunk = []
                    shard_rows = {}
                if budget is not None and produced >= budget:
                    if chunk:
                        self._account(stats, shard_rows)
                        yield chunk
                    return
            if chunk:
                self._account(stats, shard_rows)
                yield chunk

    @staticmethod
    def _account(stats, shard_rows: Dict[int, int]) -> None:
        if stats is None:
            return
        for shard_index, rows in shard_rows.items():
            source = (
                "merged" if shard_index == MERGED else f"shard{shard_index}"
            )
            stats.record(0, rows, source=source)

    def _branch_stream(
        self, index: int, skip_mode: str
    ) -> Iterator[Tuple[Answer, int]]:
        """One branch's answers in global order, tagged with their shard.

        Single-block branches merge per-shard streams lazily; branches
        with zero or several blocks (the empty answer tuple, or answers
        combining far-apart clusters that may live in different shards)
        enumerate from the merged pipeline.
        """
        merged = self._state.merged
        if len(merged.branches[index].lists) != 1:
            for answer in enumerate_branch(merged, index, skip_mode=skip_mode):
                yield answer, MERGED
            return
        rank = self._rank

        def source(shard_index: int, shard) -> Iterator[Tuple[int, int, Answer]]:
            branch = shard.branches[index]
            nodes = shard.graph.nodes
            plan_index = branch.plan.index
            for node_id in branch.lists[0]:
                yield (
                    rank(nodes[node_id].elements[0]),
                    shard_index,
                    shard.decode(plan_index, (node_id,)),
                )

        streams = [
            source(shard_index, shard)
            for shard_index, shard in enumerate(self._state.shards)
        ]
        for _, shard_index, answer in heapq.merge(
            *streams, key=lambda entry: entry[0]
        ):
            yield answer, shard_index
