"""qlang: the ``SELECT ... WHERE <FO formula>`` layer over the engine.

``db.query("SELECT x, y WHERE B(x) & R(y) & ~E(x,y) ORDER BY x LIMIT 10")``
parses here, compiles onto the session's enumeration engine
(:mod:`repro.qlang.compiler`), and returns a
:class:`~repro.qlang.runtime.CompiledQuery` whose stages are *fused*
with the paper's algorithms: projection is pushed into the workers,
``LIMIT`` becomes the engine's early-stop row budget, and a bare
``SELECT COUNT(*)`` is the counting algorithm with no enumeration.
"""

from repro.qlang.ast import OrderKey, SelectQuery
from repro.qlang.compiler import compile_select
from repro.qlang.parser import is_select, parse_select
from repro.qlang.runtime import CompiledQuery, StagePlan, StageSpec

__all__ = [
    "CompiledQuery",
    "OrderKey",
    "SelectQuery",
    "StagePlan",
    "StageSpec",
    "compile_select",
    "is_select",
    "parse_select",
]
