"""Parse qlang ``SELECT`` statements into :class:`~repro.qlang.ast.SelectQuery`.

Grammar (keywords are case-insensitive; clause order is fixed)::

    statement   := "SELECT" select_list "WHERE" formula
                   [ "GROUP BY" name_list ]
                   [ "ORDER BY" order_key ("," order_key)* ]
                   [ "LIMIT" INT ]
    select_list := "COUNT(*)" | NAME ("," NAME)* ["," "COUNT(*)"]
    order_key   := NAME [ "ASC" | "DESC" ]

The ``WHERE`` body is handed verbatim to :func:`repro.fo.parse`, so the
full FO grammar (quantifiers, ``dist``, relativized neighborhoods, ...)
is available.  One reservation follows from that split: the clause
keywords ``GROUP``, ``ORDER`` and ``LIMIT`` terminate the formula text,
so relations with those names cannot appear in a qlang ``WHERE`` body —
use the raw-formula API (``db.query(parse(...))``) for such schemas.

:func:`is_select` is the sniffer ``Database.query`` uses to route a
string: it answers True only for statements that *start* with the
``SELECT`` keyword (``select(x, y)`` stays a plain FO relation atom).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.fo.parser import parse as parse_formula
from repro.qlang.ast import OrderKey, SelectQuery

# `SELECT` as a *keyword*: at the start, not followed by `(` (which
# would make it a relation atom of a plain FO formula).
_SELECT_RE = re.compile(r"^\s*select\b(?!\s*\()", re.IGNORECASE)

# The clause keywords that may terminate the WHERE body, as keywords
# (not followed by `(`, which would make them relation atoms -- still
# reserved, see the module docstring, but the lookahead gives a clearer
# error than silently truncating the formula).
_TAIL_RE = re.compile(
    r"\b(group\s+by|order\s+by|limit)\b(?!\s*\()", re.IGNORECASE
)

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_COUNT_RE = re.compile(r"^count\s*\(\s*\*\s*\)$", re.IGNORECASE)
_INT_RE = re.compile(r"^\d+$")


def is_select(text: str) -> bool:
    """Whether ``text`` is a qlang statement (vs a raw FO formula)."""
    return isinstance(text, str) and _SELECT_RE.match(text) is not None


def _split_names(clause: str, text: str) -> List[str]:
    names = [part.strip() for part in text.split(",")]
    if any(not name for name in names):
        raise ParseError(f"empty name in {clause} list: {text!r}")
    for name in names:
        if not _NAME_RE.match(name):
            raise ParseError(
                f"{clause} expects variable names, got {name!r}"
            )
    return names


def _parse_select_list(text: str) -> Tuple[Tuple[str, ...], bool]:
    parts = [part.strip() for part in text.split(",")]
    if any(not part for part in parts):
        raise ParseError(f"empty entry in SELECT list: {text!r}")
    columns: List[str] = []
    count = False
    for position, part in enumerate(parts):
        if _COUNT_RE.match(part):
            if count:
                raise ParseError("COUNT(*) may appear at most once")
            if position != len(parts) - 1:
                raise ParseError("COUNT(*) must be the last SELECT entry")
            count = True
        elif _NAME_RE.match(part):
            columns.append(part)
        else:
            raise ParseError(
                f"SELECT list expects variable names or COUNT(*), got "
                f"{part!r}"
            )
    return tuple(columns), count


def _parse_order_list(text: str) -> Tuple[OrderKey, ...]:
    keys: List[OrderKey] = []
    for part in text.split(","):
        tokens = part.split()
        if not tokens:
            raise ParseError(f"empty entry in ORDER BY list: {text!r}")
        name = tokens[0]
        if not _NAME_RE.match(name):
            raise ParseError(
                f"ORDER BY expects variable names, got {name!r}"
            )
        descending = False
        if len(tokens) == 2:
            direction = tokens[1].upper()
            if direction == "DESC":
                descending = True
            elif direction != "ASC":
                raise ParseError(
                    f"ORDER BY direction must be ASC or DESC, got "
                    f"{tokens[1]!r}"
                )
        elif len(tokens) > 2:
            raise ParseError(f"malformed ORDER BY entry: {part.strip()!r}")
        keys.append(OrderKey(name, descending))
    return tuple(keys)


def parse_select(text: str) -> SelectQuery:
    """Parse one qlang statement; raises :class:`repro.errors.ParseError`."""
    if not is_select(text):
        raise ParseError(
            "a qlang statement must start with the SELECT keyword; "
            "raw FO formulas go through repro.fo.parse"
        )
    body = _SELECT_RE.sub("", text, count=1)
    where_split = re.split(r"\bwhere\b", body, maxsplit=1, flags=re.IGNORECASE)
    if len(where_split) != 2:
        raise ParseError("a qlang statement requires a WHERE clause")
    select_text, tail = where_split
    select_text = select_text.strip()
    if not select_text:
        raise ParseError("empty SELECT list")
    columns, count = _parse_select_list(select_text)

    # The WHERE body runs to the first tail-clause keyword.
    match = _TAIL_RE.search(tail)
    where_text = tail[: match.start()] if match else tail
    if not where_text.strip():
        raise ParseError("empty WHERE clause")
    where = parse_formula(where_text)

    group_by: Tuple[str, ...] = ()
    order_by: Tuple[OrderKey, ...] = ()
    limit: Optional[int] = None
    rest = tail[match.start() :] if match else ""
    seen_rank = -1  # clause order: GROUP BY (0) < ORDER BY (1) < LIMIT (2)
    while rest.strip():
        head = _TAIL_RE.match(rest.strip())
        if head is None:
            raise ParseError(f"unexpected trailing input: {rest.strip()!r}")
        rest = rest.strip()
        keyword = re.sub(r"\s+", " ", head.group(1).lower())
        rank = {"group by": 0, "order by": 1, "limit": 2}[keyword]
        if rank <= seen_rank:
            raise ParseError(
                f"clause {keyword.upper()} out of order (expected "
                "GROUP BY, then ORDER BY, then LIMIT)"
            )
        seen_rank = rank
        remainder = rest[head.end() :]
        next_clause = _TAIL_RE.search(remainder)
        argument = (
            remainder[: next_clause.start()] if next_clause else remainder
        ).strip()
        if not argument:
            raise ParseError(f"{keyword.upper()} requires an argument")
        if keyword == "group by":
            group_by = tuple(_split_names("GROUP BY", argument))
        elif keyword == "order by":
            order_by = _parse_order_list(argument)
        else:
            if not _INT_RE.match(argument):
                raise ParseError(
                    f"LIMIT expects a non-negative integer, got {argument!r}"
                )
            limit = int(argument)
        rest = remainder[next_clause.start() :] if next_clause else ""

    if count and not columns and group_by:
        raise ParseError(
            "GROUP BY requires the grouped variables in the SELECT list"
        )
    return SelectQuery(
        columns=columns,
        where=where,
        count=count,
        group_by=group_by,
        order_by=order_by,
        limit=limit,
    )
