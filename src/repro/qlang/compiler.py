"""Compile a :class:`~repro.qlang.ast.SelectQuery` onto the enumeration core.

The compiler's whole job is to *fuse* the declarative clauses with the
paper's three operations instead of post-processing in Python:

* the ``WHERE`` formula becomes the inner :class:`repro.session.Query`
  (preprocessing, caching, backend selection all reused);
* the ``SELECT`` list becomes the inner query's variable *order* — the
  needed columns come first, so projection is a worker-side
  trailing-column drop (``project_columns`` pushdown: dropped columns
  never cross the process boundary in process mode);
* ``LIMIT k`` with no reordering stage in between becomes the
  ``answers(limit=k)`` row budget — enumeration *stops* after ``k``
  rows (O(k) work, cancelled futures), it does not truncate a full
  materialization;
* bare ``SELECT COUNT(*)`` never enumerates at all — it is the
  counting algorithm (Theorem 2.5) verbatim.

Only ``GROUP BY`` / ``ORDER BY`` force materialization, and then only
at their stage — everything upstream still streams.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import QueryError
from repro.qlang.ast import SelectQuery
from repro.qlang.runtime import CompiledQuery, StageSpec


def _dedup(names) -> Tuple[str, ...]:
    seen = []
    for name in names:
        if name not in seen:
            seen.append(name)
    return tuple(seen)


def compile_select(select: SelectQuery, owner, **options) -> CompiledQuery:
    """Build a :class:`CompiledQuery` for ``select`` against ``owner``.

    ``owner`` is anything with the session ``query(formula, order=...)``
    method — a :class:`repro.session.Database` or a snapshot.
    ``options`` pass through to it (``backend``, ``workers``,
    ``chunk_rows``, ...).
    """
    free_names = sorted(var.name for var in select.where.free)
    free_set = set(free_names)

    for column in select.columns:
        if column not in free_set:
            raise QueryError(
                f"SELECT column {column!r} is not a free variable of the "
                f"WHERE formula (free: {', '.join(free_names) or 'none'})"
            )
    for name in select.group_by:
        if name not in free_set:
            raise QueryError(
                f"GROUP BY variable {name!r} is not a free variable of "
                f"the WHERE formula"
            )
    if select.group_by:
        if len(set(select.group_by)) != len(select.group_by):
            raise QueryError("duplicate variable in GROUP BY")
        missing = [c for c in select.columns if c not in select.group_by]
        if missing:
            raise QueryError(
                f"SELECT column(s) {', '.join(missing)} must appear in "
                "GROUP BY (only grouped variables and COUNT(*) may be "
                "selected)"
            )
    elif select.count and select.columns:
        raise QueryError(
            "COUNT(*) next to plain columns requires GROUP BY"
        )
    if select.count and not select.columns and select.order_by:
        raise QueryError("a bare SELECT COUNT(*) yields one row; "
                         "ORDER BY does not apply")

    output_columns = select.output_columns
    order_targets = set(output_columns) if select.group_by else free_set
    for key in select.order_by:
        if key.column not in order_targets:
            raise QueryError(
                f"ORDER BY key {key.column!r} is not "
                + ("an output column of the grouped query"
                   if select.group_by
                   else "a free variable of the WHERE formula")
            )

    # The columns enumeration must carry: grouped keys, or the selected
    # columns plus any ORDER BY keys that are not selected (sorted on,
    # then dropped parent-side).
    if select.group_by:
        carried = _dedup(select.group_by)
    else:
        carried = _dedup(
            tuple(select.columns)
            + tuple(key.column for key in select.order_by)
        )

    bare_count = select.count and not select.columns
    stages: List[StageSpec] = [StageSpec("where", str(select.where))]
    if bare_count:
        inner_query = owner.query(select.where, **options)
        stages.append(
            StageSpec("count", "COUNT(*) via the counting algorithm "
                               "(no enumeration)")
        )
    else:
        # Needed columns first: projection = keep the leading prefix.
        inner_order = carried + tuple(
            name for name in free_names if name not in carried
        )
        inner_query = owner.query(
            select.where, order=inner_order, **options
        )
        if len(carried) < len(inner_order):
            project = tuple(range(len(carried)))
            detail = (
                f"({', '.join(carried)}) — drops "
                f"({', '.join(n for n in inner_order[len(carried):])}) "
                "worker-side, before transport"
            )
        else:
            project = None
            detail = f"({', '.join(carried)}) — identity, no drop needed"
        stages.append(StageSpec("project", detail))
        if select.group_by:
            detail = f"({', '.join(select.group_by)})"
            if select.count:
                detail += " -> count per group"
            stages.append(StageSpec("group", detail + ", first-seen order"))
        if select.order_by:
            stages.append(
                StageSpec(
                    "order",
                    ", ".join(str(key) for key in select.order_by)
                    + " (stable, materializes)",
                )
            )
    push_limit = (
        select.limit is not None
        and not bare_count
        and not select.group_by
        and not select.order_by
    )
    if select.limit is not None:
        stages.append(
            StageSpec(
                "limit",
                f"{select.limit} "
                + ("[pushed into enumeration: row budget, early stop]"
                   if push_limit
                   else "[applied after the reordering stage]"),
            )
        )

    return CompiledQuery(
        select=select,
        query=inner_query,
        stages=tuple(stages),
        carried_columns=() if bare_count else carried,
        project=(None if bare_count else project),
        push_limit=push_limit,
    )
