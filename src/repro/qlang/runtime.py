"""The executable side of qlang: :class:`CompiledQuery` and its stages.

A :class:`CompiledQuery` wraps one inner :class:`repro.session.Query`
plus the compiled stage list.  Enumeration streams through the stages;
only ``GROUP BY`` / ``ORDER BY`` materialize, and a pushed ``LIMIT``
never reaches Python at all — it rides the engine's row budget
(:meth:`repro.session.Query.answers`), stopping branch execution after
``k`` rows.

The handle is *live* like the inner query: each :meth:`stream` /
:meth:`all` call plans against the session's current head (or stays
pinned when compiled against a snapshot).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class StageSpec:
    """One compiled stage, for :meth:`CompiledQuery.explain`."""

    name: str
    detail: str

    def __str__(self) -> str:
        return f"{self.name}: {self.detail}"


@dataclass(frozen=True)
class StagePlan:
    """What :meth:`CompiledQuery.explain` returns.

    ``inner`` is the enumeration engine's own
    :class:`repro.session.query.QueryPlan` for the ``WHERE`` formula —
    backend, shards, transport, cost estimates — and ``stages`` are the
    qlang stages fused around it.
    """

    statement: str
    columns: Tuple[str, ...]
    stages: Tuple[StageSpec, ...]
    inner: object

    def describe(self) -> str:
        lines = [
            f"statement: {self.statement}",
            f"columns: ({', '.join(self.columns)})",
            "stages:",
        ]
        lines.extend(
            f"  {position}. {stage}"
            for position, stage in enumerate(self.stages, start=1)
        )
        lines.append("enumeration plan:")
        lines.extend(
            f"  {line}" for line in self.inner.describe().splitlines()
        )
        return "\n".join(lines)


class CompiledQuery:
    """One compiled qlang statement, bound to a database (or snapshot).

    Construction goes through :func:`repro.qlang.compiler.compile_select`
    — or just ``db.query("SELECT ...")``, which routes here when the
    string starts with the ``SELECT`` keyword.
    """

    def __init__(
        self,
        select,
        query,
        stages: Tuple[StageSpec, ...],
        carried_columns: Tuple[str, ...],
        project: Optional[Tuple[int, ...]],
        push_limit: bool,
    ):
        self._select = select
        self._query = query
        self._stages = stages
        self._carried = carried_columns
        self._project = project
        self._push_limit = push_limit
        self._last_handle = None

    # -- introspection -------------------------------------------------

    @property
    def select(self):
        """The parsed :class:`repro.qlang.ast.SelectQuery`."""
        return self._select

    @property
    def statement(self) -> str:
        """The canonical statement text (parses back to ``select``)."""
        return str(self._select)

    @property
    def columns(self) -> Tuple[str, ...]:
        """Output column names, in row order."""
        return self._select.output_columns

    @property
    def query(self):
        """The inner enumeration :class:`repro.session.Query`."""
        return self._query

    @property
    def _bare_count(self) -> bool:
        return self._select.count and not self._select.columns

    @property
    def transport_stats(self):
        """Received-row/byte accounting of the most recent enumeration
        (:class:`repro.engine.transport.TransferStats`; ``None`` before
        the first :meth:`stream` / :meth:`all`).  The early-exit
        observable: a pushed ``LIMIT k`` decodes at most ``k`` plus one
        chunk's worth of rows in process mode."""
        if self._last_handle is None:
            return None
        return self._last_handle.transport_stats

    @property
    def backend_used(self):
        """The concrete mode the most recent enumeration ran under
        (``None`` before the first pull)."""
        if self._last_handle is None:
            return None
        return self._last_handle.backend_used

    def explain(self) -> StagePlan:
        """The fused plan: qlang stages around the enumeration plan."""
        return StagePlan(
            statement=self.statement,
            columns=self.columns,
            stages=self._stages,
            inner=self._query.explain(),
        )

    # -- stages --------------------------------------------------------

    def _sorted(self, rows: List[tuple], columns: Tuple[str, ...]):
        """Stable multi-key sort: one stable pass per key, last first."""
        for key in reversed(self._select.order_by):
            index = columns.index(key.column)
            rows.sort(key=lambda row: row[index], reverse=key.descending)
        return rows

    def _grouped(self, rows: Iterator[tuple]) -> List[tuple]:
        """Group carried key tuples, first-seen order (dict = insertion
        ordered), appending the per-group count when selected."""
        counts: dict = {}
        for row in rows:
            counts[row] = counts.get(row, 0) + 1
        select = self._select
        positions = tuple(
            self._carried.index(column) for column in select.columns
        )
        if select.count:
            return [
                tuple(key[p] for p in positions) + (count,)
                for key, count in counts.items()
            ]
        return [tuple(key[p] for p in positions) for key in counts]

    def stream(self) -> Iterator[tuple]:
        """Yield output rows; streams end-to-end unless a stage must
        materialize (``GROUP BY`` / ``ORDER BY``)."""
        select = self._select
        if self._bare_count:
            rows: Iterator[tuple] = iter([(self._query.count(),)])
            if select.limit is not None:
                rows = islice(rows, select.limit)
            yield from rows
            return
        limit = select.limit if self._push_limit else None
        handle = self._query.answers(limit=limit, project=self._project)
        self._last_handle = handle
        rows = handle.stream()
        if select.group_by:
            out = self._grouped(rows)
            if select.order_by:
                self._sorted(out, self.columns)
            if select.limit is not None and not self._push_limit:
                out = out[: select.limit]
            yield from out
            return
        if select.order_by:
            materialized = self._sorted(list(rows), self._carried)
            rows = iter(materialized)
        if select.limit is not None and not self._push_limit:
            rows = islice(rows, select.limit)
        positions = tuple(
            self._carried.index(column) for column in select.columns
        )
        if positions == tuple(range(len(self._carried))):
            yield from rows
        else:
            for row in rows:
                yield tuple(row[p] for p in positions)

    def all(self) -> List[tuple]:
        """Materialize every output row."""
        return list(self.stream())

    def count(self) -> int:
        """How many values/rows the statement yields.

        A bare ``SELECT COUNT(*)`` returns the counted value itself
        (Theorem 2.5 — no enumeration).  A plain projection is 1:1 with
        the answer set, so this is the counting algorithm clipped by
        ``LIMIT`` — still no enumeration.  Only ``GROUP BY`` has to
        materialize (the number of groups is not a counting-algorithm
        quantity).
        """
        select = self._select
        if self._bare_count:
            return self._query.count()
        if select.group_by:
            return len(self.all())
        total = self._query.count()
        if select.limit is not None:
            total = min(total, select.limit)
        return total

    def __iter__(self) -> Iterator[tuple]:
        return self.stream()

    def __repr__(self) -> str:
        return f"CompiledQuery({self.statement!r})"
