"""The qlang AST: one immutable :class:`SelectQuery` per statement.

qlang is the thin declarative layer over the paper's enumeration core::

    SELECT x, y WHERE B(x) & R(y) & ~E(x,y) ORDER BY x LIMIT 10
    SELECT COUNT(*) WHERE exists y. E(x,y)
    SELECT x, COUNT(*) WHERE E(x,y) GROUP BY x

The ``WHERE`` body is a full first-order formula (everything
:func:`repro.fo.parse` accepts); the surrounding clauses compile to
stream stages fused with the enumeration engine
(:mod:`repro.qlang.compiler`).

Both node types print canonically — ``parse_select(str(ast)) == ast``
is a tested property — so an AST doubles as its own cache/debug key,
mirroring the FO layer's ``parse(str(formula)) == formula`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.fo.syntax import Formula


@dataclass(frozen=True)
class OrderKey:
    """One ``ORDER BY`` key: a selected variable, optionally ``DESC``."""

    column: str
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.column} DESC" if self.descending else self.column


@dataclass(frozen=True)
class SelectQuery:
    """One parsed qlang statement.

    ``columns`` are the selected variable names in output order (empty
    for a bare ``SELECT COUNT(*)``); ``count`` records whether
    ``COUNT(*)`` appears in the select list.  With ``group_by`` the
    output rows are the distinct key tuples in first-seen enumeration
    order, extended by a trailing count column when ``count`` is set.
    """

    columns: Tuple[str, ...]
    where: Formula
    count: bool = False
    group_by: Tuple[str, ...] = ()
    order_by: Tuple[OrderKey, ...] = field(default=())
    limit: Optional[int] = None

    @property
    def output_columns(self) -> Tuple[str, ...]:
        """The column names of the rows this query yields."""
        if self.count and not self.columns:
            return ("count",)
        if self.count:
            return self.columns + ("count",)
        return self.columns

    def __str__(self) -> str:
        select_list = list(self.columns)
        if self.count:
            select_list.append("COUNT(*)")
        parts = [
            f"SELECT {', '.join(select_list)}",
            f"WHERE {self.where}",
        ]
        if self.group_by:
            parts.append(f"GROUP BY {', '.join(self.group_by)}")
        if self.order_by:
            parts.append(
                f"ORDER BY {', '.join(str(key) for key in self.order_by)}"
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)
