"""The quantifier-elimination pipeline of Proposition 3.4.

Given a structure ``A``, an FO query ``phi(x-bar)``, and ``eps``, the
pipeline produces everything the counting / testing / enumeration
algorithms need:

1. **Localization** (Step 1): :func:`repro.fo.localize.localize` rewrites
   ``phi`` into an r-local formula ``phi'`` equivalent on ``A`` (global
   content evaluated against ``A``, derived unary predicates materialized).
2. **Partition decomposition + Feferman-Vaught** (Step 2): for each
   partition ``P`` of the positions, ``phi'`` is *separated* under the
   assumption that blocks are pairwise at distance > ``2r+1``; the result
   is a boolean combination of single-block *units*, expanded into
   mutually exclusive clauses (the paper's index set ``T_P``).
3. **Colored graph** (Steps 3-4): nodes are connected cluster tuples
   tagged with position sets; per-node *unit vectors* play the role of the
   colors ``C_{P,j,t}``; edges witness cluster proximity.
4. **Answer encoder** ``f`` (Step 5): a tuple's induced partition plus
   per-block node lookups, both constant-time after preprocessing.

An answer of ``phi`` then corresponds, under exactly one *branch*
``(P, t)``, to a choice of one node per block from the branch's per-block
node lists such that no two chosen nodes are adjacent — the
quantifier-free form ``psi = psi_1 and psi_2`` of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError, QueryError, UnsupportedQueryError
from repro.fo.localize import (
    LocalEvaluator,
    LocalizationBudget,
    LocalizedQuery,
    localize,
    separate,
)
from repro.fo.normalize import boolean_atoms, exclusive_dnf, simplify
from repro.fo.semantics import free_tuple
from repro.fo.syntax import FalseF, Formula, TrueF, Var
from repro.core.colored_graph import BOTTOM, ColoredGraph, build_colored_graph
from repro.core.partitions import (
    Partition,
    all_partitions,
    assemble,
    block_subtuple,
    partition_of_tuple,
)
from repro.structures.structure import Structure

Element = Hashable
SignVector = Tuple[bool, ...]


@dataclass
class PartitionPlan:
    """The Feferman-Vaught data for one partition ``P``.

    ``units`` are the maximal single-block subformulas of the separated
    formula; ``unit_block[i]`` names the block of ``units[i]``;
    ``clauses`` are the satisfying sign vectors over the units — mutually
    exclusive by construction (each is a *total* assignment).
    ``constant`` replaces the clause machinery when separation collapsed
    the formula to a constant (then every/no block assignment satisfies).
    """

    index: int
    partition: Partition
    units: List[Formula]
    unit_block: List[int]
    clauses: List[SignVector]
    clause_set: Set[SignVector]
    block_units: List[List[int]]
    constant: Optional[bool] = None


@dataclass
class Branch:
    """One mutually exclusive enumeration branch ``(P, t)``.

    ``lists[j]`` holds the node ids eligible for block ``j`` — the paper's
    color list for position ``j`` — sorted by node id (the linear order of
    ``G`` used by the skip function).
    """

    plan: PartitionPlan
    signs: SignVector
    lists: List[List[int]]

    def is_empty(self) -> bool:
        return any(not node_list for node_list in self.lists)


def supports_query(
    structure: Structure,
    query: Formula,
    order: Optional[Sequence[Var]] = None,
    budget: Optional[LocalizationBudget] = None,
    max_units: int = 16,
) -> bool:
    """True when ``(structure, query)`` fits the clause-expansion budget.

    Runs the graph-free front half of pipeline construction —
    localization plus per-partition separation — and applies exactly the
    checks that make ``Pipeline(...)`` raise
    :class:`UnsupportedQueryError`, without paying for colored-graph
    construction.  Unit counts are structure-dependent (localization
    evaluates global content against ``structure``), so there is no
    purely syntactic version of this check.
    """
    try:
        localized = localize(query, structure, budget)
    except UnsupportedQueryError:
        return False
    formula = localized.formula
    if isinstance(formula, (TrueF, FalseF)):
        return True
    variables = free_tuple(query, order)
    if not variables:
        return True
    link_radius = 2 * localized.radius + 1
    for partition in all_partitions(len(variables)):
        sides = {
            variables[position]: block_index
            for block_index, block in enumerate(partition)
            for position in block
        }
        try:
            separated = simplify(
                separate(formula, sides, link_radius, localized.localizer)
            )
        except UnsupportedQueryError:
            return False
        if isinstance(separated, (TrueF, FalseF)):
            continue
        if len(boolean_atoms(separated)) > max_units:
            return False
    return True


class Pipeline:
    """Preprocessing output of Proposition 3.4 for one (A, phi, eps)."""

    def __init__(
        self,
        structure: Structure,
        query: Formula,
        order: Optional[Sequence[Var]] = None,
        eps: float = 0.5,
        budget: Optional[LocalizationBudget] = None,
        max_nodes: int = 5_000_000,
        max_units: int = 16,
        graph_factory=None,
        intern=None,
        build_graph: bool = True,
    ):
        self.structure = structure
        self.query = query
        self.eps = eps
        self.budget = budget
        # Dense element<->id table for the columnar answer transport;
        # built lazily from the domain order, or adopted from a rebuild
        # spec so worker processes share the parent's table verbatim.
        self._intern = intern
        self.variables: Tuple[Var, ...] = free_tuple(query, order)
        self.arity = len(self.variables)

        self.localized: LocalizedQuery = localize(query, structure, budget)
        self.evaluator = self.localized.evaluator
        self.radius = self.localized.radius
        self.link_radius = 2 * self.radius + 1

        formula = self.localized.formula
        self.trivial: Optional[bool] = None
        if isinstance(formula, TrueF):
            self.trivial = True
        elif isinstance(formula, FalseF):
            self.trivial = False
        elif self.arity == 0:
            raise EvaluationError(
                "localization of a sentence must produce a constant, got "
                f"{formula}"
            )

        self.plans: List[PartitionPlan] = []
        self.branches: List[Branch] = []
        self.graph: Optional[ColoredGraph] = None
        self._partition_index: Dict[Partition, int] = {}
        if self.trivial is None:
            self._build_plans(max_units)
            # ``build_graph=False`` stops after localization + separation:
            # the result is a *template* pipeline (shared plans, no colored
            # graph) that :meth:`derive` specializes per substructure —
            # the repro.shard scatter path, where the graph is built per
            # shard but the localization must be computed ONCE against the
            # full structure (sentence truth values and derived predicates
            # are global content).
            if not build_graph:
                return
            # ``graph_factory`` is the engine's preprocessing-sharing hook:
            # a batch can hand out clones of one cached graph instead of
            # re-enumerating cluster tuples per query (see
            # repro.engine.batch.QueryBatch).
            factory = graph_factory or build_colored_graph
            self.graph = factory(
                structure,
                self.evaluator,
                self.arity,
                self.link_radius,
                max_nodes=max_nodes,
            )
            self._attach_unit_vectors()
            self._build_branches()

    # ------------------------------------------------------------------
    # Step 2: separation per partition
    # ------------------------------------------------------------------

    def _build_plans(self, max_units: int) -> None:
        formula = self.localized.formula
        for index, partition in enumerate(all_partitions(self.arity)):
            sides = {
                self.variables[position]: block_index
                for block_index, block in enumerate(partition)
                for position in block
            }
            separated = simplify(
                separate(formula, sides, self.link_radius, self.localized.localizer)
            )
            self._partition_index[partition] = index
            if isinstance(separated, TrueF) or isinstance(separated, FalseF):
                constant = isinstance(separated, TrueF)
                plan = PartitionPlan(
                    index, partition, [], [], [()], {()}, [[] for _ in partition],
                    constant=constant,
                )
                if not constant:
                    plan.clauses = []
                    plan.clause_set = set()
                self.plans.append(plan)
                continue
            units = boolean_atoms(separated)
            if len(units) > max_units:
                raise UnsupportedQueryError(
                    f"partition {partition} yields {len(units)} units "
                    f"(> {max_units}); the clause expansion 2^{len(units)} "
                    "is too large"
                )
            unit_block: List[int] = []
            var_block = {var: side for var, side in sides.items()}
            for unit in units:
                blocks = {var_block[var] for var in unit.free}
                if len(blocks) != 1:
                    raise EvaluationError(
                        f"separated unit {unit} spans blocks {blocks}"
                    )
                unit_block.append(next(iter(blocks)))
            clauses = [
                tuple(sign for _, sign in clause)
                for clause in exclusive_dnf(separated)
            ]
            block_units = [
                [i for i, block in enumerate(unit_block) if block == j]
                for j in range(len(partition))
            ]
            self.plans.append(
                PartitionPlan(
                    index,
                    partition,
                    units,
                    unit_block,
                    clauses,
                    set(clauses),
                    block_units,
                )
            )

    # ------------------------------------------------------------------
    # Steps 3-4: colors (unit vectors per node)
    # ------------------------------------------------------------------

    def _attach_unit_vectors(self) -> None:
        # block (as position tuple) -> [(plan_index, block_index)]
        block_usage: Dict[Tuple[int, ...], List[Tuple[int, int]]] = {}
        for plan in self.plans:
            for block_index, block in enumerate(plan.partition):
                block_usage.setdefault(block, []).append((plan.index, block_index))
        assert self.graph is not None
        for node in self.graph.nodes[1:]:
            usages = block_usage.get(node.positions)
            if not usages:
                continue
            for plan_index, block_index in usages:
                plan = self.plans[plan_index]
                if plan.constant is not None:
                    node.unit_values[plan_index] = ()
                    continue
                assignment = {
                    self.variables[position]: element
                    for position, element in zip(node.positions, node.elements)
                }
                vector = tuple(
                    self.evaluator.holds(plan.units[unit_index], assignment)
                    for unit_index in plan.block_units[block_index]
                )
                node.unit_values[plan_index] = vector

    # ------------------------------------------------------------------
    # Branches (the mutually exclusive (P, t) pairs)
    # ------------------------------------------------------------------

    def _build_branches(self) -> None:
        assert self.graph is not None
        # Index nodes by (plan, block position tuple, unit vector).  The
        # index lists are *shared* with the branches referencing them, so
        # dynamic updates (repro.core.dynamic) can patch both at once.
        by_block_vector: Dict[Tuple[int, Tuple[int, ...], SignVector], List[int]] = {}
        for node in self.graph.nodes[1:]:
            for plan_index, vector in node.unit_values.items():
                key = (plan_index, node.positions, vector)
                by_block_vector.setdefault(key, []).append(node.node_id)
        for node_list in by_block_vector.values():
            node_list.sort()
        self.block_vector_index = by_block_vector
        for plan in self.plans:
            if plan.constant is False:
                continue
            if plan.constant is True:
                clauses: List[SignVector] = [()]
            else:
                clauses = plan.clauses
            for signs in clauses:
                lists: List[List[int]] = []
                for block_index, block in enumerate(plan.partition):
                    if plan.constant is True:
                        required: SignVector = ()
                    else:
                        required = tuple(
                            signs[unit_index]
                            for unit_index in plan.block_units[block_index]
                        )
                    key = (plan.index, block, required)
                    lists.append(by_block_vector.setdefault(key, []))
                branch = Branch(plan, signs, lists)
                self.branches.append(branch)

    @property
    def branch_count(self) -> int:
        """How many mutually exclusive ``(P, t)`` branches exist.

        Branches partition the answer set, so this is the engine's unit
        of parallel work: each branch can be enumerated independently and
        the results concatenated in branch order reproduce the serial
        answer order exactly.
        """
        return len(self.branches)

    @property
    def intern_table(self):
        """The dense element<->id table of the columnar answer transport.

        Derived from the domain's fixed linear order, so independently
        rebuilt pipelines over the same structure agree on every id; a
        worker process adopts the parent's table from the rebuild spec
        instead of rebuilding it.
        """
        if self._intern is None:
            from repro.engine.transport import InternTable

            self._intern = InternTable(self.structure.domain)
        return self._intern

    def rebuild_spec(self):
        """The picklable recipe ``(structure, query, order, eps, budget,
        intern_table_or_None)``.

        Everything a worker process needs to reconstruct an equivalent
        pipeline; the heavy derived state (graph, plans, enumerators) is
        recomputed worker-side and memoized per process.  The intern
        table ships *when already built* (the columnar transport forces
        it before specs are cut), so both transport sides share one
        table; paths that never move answers (counting, warming, pickle
        transport) ship ``None`` and a worker that does need the table
        derives the identical one from the domain order.
        """
        return (
            self.structure,
            self.query,
            self.variables,
            self.eps,
            self.budget,
            self._intern,
        )

    def __getstate__(self):
        # Branch-arming memos (attached lazily by repro.core.enumeration
        # under ``_armed_branches``) hold skip-function state that is
        # cheap to rebuild and useless in another process; drop them so
        # pipelines pickle cleanly (the warm-cache spill of
        # repro.storage.wal relies on this).
        state = self.__dict__.copy()
        state.pop("_armed_branches", None)
        return state

    def fork(self, structure: Structure) -> "Pipeline":
        """A warm copy of this pipeline bound to ``structure`` — a
        copy-on-write fork of ``self.structure`` with identical content.

        Shares everything immutable (plans, partition index, intern
        table, the localized formula) and copies exactly what dynamic
        maintenance mutates: the colored graph *with* its unit-vector
        colors, the block-vector index buckets, and the branch objects —
        preserving the invariant that branch lists ARE the index
        buckets, so :class:`repro.core.dynamic.PipelineMaintainer` can
        patch both sides independently.  A fresh evaluator binds to the
        fork so ball/unary caches never read the old head.  The session
        layer uses this so a commit that overlaps a live pin keeps both
        heads' plans warm instead of rebuilding the new head cold.
        """
        twin = Pipeline.__new__(Pipeline)
        twin.structure = structure
        twin.query = self.query
        twin.eps = self.eps
        twin.budget = self.budget
        twin._intern = self._intern
        twin.variables = self.variables
        twin.arity = self.arity
        evaluator = LocalEvaluator(structure, self.localized.extra_unary)
        twin.localized = replace(
            self.localized, structure=structure, evaluator=evaluator
        )
        twin.evaluator = evaluator
        twin.radius = self.radius
        twin.link_radius = self.link_radius
        twin.trivial = self.trivial
        twin.plans = self.plans
        twin._partition_index = self._partition_index
        twin.branches = []
        if self.graph is None:
            twin.graph = None
            return twin
        graph = self.graph.clone(copy_colors=True)
        graph.structure = structure
        twin.graph = graph
        index = {
            key: list(bucket) for key, bucket in self.block_vector_index.items()
        }
        twin.block_vector_index = index
        for branch in self.branches:
            plan = branch.plan
            lists: List[List[int]] = []
            for block_index, block in enumerate(plan.partition):
                if plan.constant is True:
                    required: SignVector = ()
                else:
                    required = tuple(
                        branch.signs[unit_index]
                        for unit_index in plan.block_units[block_index]
                    )
                lists.append(index.setdefault((plan.index, block, required), []))
            twin.branches.append(Branch(plan, branch.signs, lists))
        return twin

    def _derive_header(self, structure: Structure, intern) -> "Pipeline":
        """Shared scaffolding of :meth:`derive` / :meth:`merge`: a pipeline
        bound to ``structure`` that reuses this template's localization,
        plans, and partition index (all structure-independent once the
        global content is baked in), with a fresh evaluator."""
        twin = Pipeline.__new__(Pipeline)
        twin.structure = structure
        twin.query = self.query
        twin.eps = self.eps
        twin.budget = self.budget
        twin._intern = intern
        twin.variables = self.variables
        twin.arity = self.arity
        evaluator = LocalEvaluator(structure, self.localized.extra_unary)
        twin.localized = replace(
            self.localized, structure=structure, evaluator=evaluator
        )
        twin.evaluator = evaluator
        twin.radius = self.radius
        twin.link_radius = self.link_radius
        twin.trivial = self.trivial
        twin.plans = self.plans
        twin._partition_index = self._partition_index
        twin.branches = []
        twin.graph = None
        return twin

    def derive(
        self, substructure: Structure, max_nodes: int = 5_000_000
    ) -> "Pipeline":
        """Specialize this template to a substructure: the scatter half of
        :mod:`repro.shard`.

        Localization is NOT re-run — sentence truth values, derived unary
        predicates, and counting totals were evaluated against the full
        structure when the template was built and carry over verbatim.
        Only the structure-shaped tail is rebuilt: the colored graph over
        the substructure's domain, its unit-vector colors, and the branch
        lists.  Because the shard layer hands in unions of whole Gaifman
        components, every ball (hence every node, edge, and color) agrees
        with the full structure's, so the shard graph is the exact
        restriction of the global one.
        """
        twin = self._derive_header(substructure, intern=None)
        if twin.trivial is None:
            twin.graph = build_colored_graph(
                substructure,
                twin.evaluator,
                twin.arity,
                twin.link_radius,
                max_nodes=max_nodes,
            )
            twin._attach_unit_vectors()
            twin._build_branches()
        return twin

    def merge(
        self, structure: Structure, shards: Sequence["Pipeline"]
    ) -> "Pipeline":
        """Assemble shard pipelines into one global-equivalent pipeline:
        the gather half of :mod:`repro.shard`.

        ``shards`` must be :meth:`derive` products over disjoint unions of
        whole Gaifman components of ``structure`` that together cover its
        domain.  Node ids are renumbered in global seed order: each
        shard's nodes arrive grouped per seed in the shard's (= global,
        restricted) domain order, so a single ordered merge keyed by the
        seed's global rank reproduces exactly the node sequence a cold
        ``Pipeline(structure, ...)`` build would create — per-seed node
        blocks are contiguous and internally deterministic, and a seed
        lives in exactly one shard, so the key never ties across shards.
        Adjacency is remapped per shard (balls never leave a component,
        so no edge crosses shards), colors are copied (unit formulas are
        r-local, hence shard-computable), and the branch lists are
        rebuilt over the renumbered ids.  The result is indistinguishable
        from the cold global build — same node ids, same branch lists,
        same enumeration byte order — at the cost of a merge instead of a
        global graph construction.
        """
        from heapq import merge as heap_merge

        merged = self._derive_header(structure, intern=self._intern)
        if merged.trivial is not None:
            return merged
        rank = structure.order.rank
        graph = ColoredGraph(structure, self.link_radius, self.arity)
        id_maps: List[Dict[int, int]] = [{} for _ in shards]
        def source(shard_index: int, shard: "Pipeline"):
            # A helper (not an inline genexp) so shard_index/shard bind
            # per shard instead of to the comprehension's last iteration.
            return (
                (rank(node.elements[0]), shard_index, node)
                for node in shard.graph.nodes[1:]
            )

        sources = [source(i, shard) for i, shard in enumerate(shards)]
        origins: List[Tuple[int, int]] = []  # (shard_index, old_id) per new node
        for _, shard_index, node in heap_merge(
            *sources, key=lambda entry: entry[0]
        ):
            new_id = graph.add_node(node.elements, node.positions)
            graph.nodes[new_id].unit_values = dict(node.unit_values)
            id_maps[shard_index][node.node_id] = new_id
            origins.append((shard_index, node.node_id))
        adjacency: List[FrozenSet[int]] = [frozenset()]
        for shard_index, old_id in origins:
            mapping = id_maps[shard_index]
            adjacency.append(
                frozenset(
                    mapping[other]
                    for other in shards[shard_index].graph.adjacency[old_id]
                )
            )
        graph.adjacency = adjacency
        merged.graph = graph
        merged._build_branches()
        return merged

    # ------------------------------------------------------------------
    # Step 5: the encoder f and its inverse
    # ------------------------------------------------------------------

    def linked(self, left: Element, right: Element) -> bool:
        """``dist(left, right) <= 2r + 1`` via cached balls (the paper's
        relation R, Step 5)."""
        return right in self.evaluator.ball(left, self.link_radius)

    def encode(self, elements: Sequence[Element]):
        """``f(a-bar)``: the induced partition index and per-block node ids.

        Returns ``(plan_index, node_ids)``; raises :class:`QueryError` on
        arity mismatch or elements outside the domain.
        """
        if len(elements) != self.arity:
            raise QueryError(
                f"expected a {self.arity}-tuple, got {len(elements)}-tuple"
            )
        for element in elements:
            if element not in self.structure:
                raise QueryError(f"element {element!r} is not in the domain")
        partition = partition_of_tuple(tuple(elements), self.linked)
        plan_index = self._partition_index[partition]
        assert self.graph is not None
        node_ids = []
        for block in partition:
            node_id = self.graph.node_id(
                block_subtuple(elements, block), block
            )
            if node_id is None:
                raise EvaluationError(
                    f"missing colored-graph node for cluster {block}; "
                    "the graph construction is incomplete"
                )
            node_ids.append(node_id)
        return plan_index, tuple(node_ids)

    def decode(self, plan_index: int, node_ids: Sequence[int]) -> Tuple[Element, ...]:
        """``f^{-1}``: rebuild the answer tuple from branch node choices."""
        assert self.graph is not None
        plan = self.plans[plan_index]
        clusters = [self.graph.node(node_id).elements for node_id in node_ids]
        return assemble(self.arity, plan.partition, clusters)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "arity": self.arity,
            "radius": self.radius,
            "link_radius": self.link_radius,
            "trivial": self.trivial,
            "derived_predicates": len(self.localized.derived_formulas),
            "partitions": len(self.plans),
            "branches": len(self.branches),
            "graph_nodes": self.graph.node_count if self.graph else 0,
            "graph_max_degree": (
                self.graph.max_degree if self.graph and self.graph.adjacency else 0
            ),
            "structure_degree": self.structure.degree,
            "structure_size": self.structure.cardinality,
        }
