"""Model checking of FO sentences in pseudo-linear time (Theorem 2.4).

The paper builds on Grohe's algorithm [Gro01].  In this library the
algorithm *is* the structure-assisted localization of
:mod:`repro.fo.localize`: a sentence has no free variables, so every
quantifier is eventually eliminated against the structure — innermost
quantifiers become relativized (neighborhood-bounded) or counting
conditions, and the outermost one is resolved by a single scan evaluating
a local formula per element.  Total cost ``O(h(|q|) * n * d^{h(|q|)})``,
i.e. pseudo-linear over a low-degree class.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import QueryError
from repro.fo.localize import LocalizationBudget, localize
from repro.fo.syntax import Formula, TrueF
from repro.structures.structure import Structure


def model_check(
    sentence: Formula,
    structure: Structure,
    budget: Optional[LocalizationBudget] = None,
) -> bool:
    """Decide ``A |= sentence`` in pseudo-linear time."""
    if sentence.free:
        raise QueryError(
            "model checking is for sentences; "
            f"free variables: {sorted(v.name for v in sentence.free)}"
        )
    localized = localize(sentence, structure, budget)
    return isinstance(localized.formula, TrueF)
