"""The colored graph ``G`` of Proposition 3.4 (Steps 3-4).

Nodes of ``G`` are

* the dummy node ``v_bot`` (id 0), and
* one node ``v_(b-bar, S)`` for every tuple ``b-bar`` of at most ``k``
  elements that is *connected at the linking radius* ``2r + 1`` (i.e. the
  graph on its components with edges "distance <= 2r+1" is connected) and
  every set ``S`` of ``|b-bar|`` query positions.

``S`` plays the role of the paper's injection ``iota``: the paper creates a
node per *arbitrary* injection, but only the monotone injections
``iota_Pj`` (mapping the i-th cluster position to the i-th smallest member
of a block) are ever in the image of the answer encoder ``f``, so we index
nodes by the position *set* directly.

Edges connect nodes whose component tuples come within the linking radius
of each other — so the quantifier-free condition "no two distinct answer
positions are E-adjacent in G" (``psi_1``) holds exactly when the clusters
of the original tuple are pairwise far apart (``delta_P``).

The per-node color data (evaluations of the per-cluster formulas
``theta_{P,j,t}``) is attached by :mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError, UnsupportedQueryError
from repro.fo.localize import LocalEvaluator
from repro.structures.structure import Structure
from repro.util.itertools2 import connected_subsets

Element = Hashable
PositionSet = Tuple[int, ...]

BOTTOM = 0


@dataclass
class VNode:
    """One node of the colored graph.

    ``elements`` is the cluster tuple ``b-bar`` (possibly with repeated
    elements — answer tuples may repeat an element); ``positions`` is the
    sorted tuple of query positions the components stand for.  The dummy
    node has empty ``elements`` and ``positions``.
    """

    node_id: int
    elements: Tuple[Element, ...]
    positions: PositionSet
    # unit_values[partition_index] = tuple of booleans, one per unit of the
    # partition whose block equals ``positions`` (filled by the pipeline).
    unit_values: Dict[int, Tuple[bool, ...]] = field(default_factory=dict)


class ColoredGraph:
    """The graph ``G`` with adjacency and the encoder-lookup table."""

    def __init__(self, structure: Structure, link_radius: int, k: int):
        self.structure = structure
        self.link_radius = link_radius
        self.k = k
        bottom = VNode(BOTTOM, (), ())
        self.nodes: List[VNode] = [bottom]
        self._by_key: Dict[Tuple[Tuple[Element, ...], PositionSet], int] = {
            ((), ()): BOTTOM
        }
        self.adjacency: List[FrozenSet[int]] = []
        self._containing: Dict[Element, List[int]] = {}

    # -- construction ---------------------------------------------------

    def add_node(self, elements: Tuple[Element, ...], positions: PositionSet) -> int:
        key = (elements, positions)
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        node_id = len(self.nodes)
        self.nodes.append(VNode(node_id, elements, positions))
        self._by_key[key] = node_id
        for element in set(elements):
            self._containing.setdefault(element, []).append(node_id)
        return node_id

    def finalize_edges(self, evaluator: LocalEvaluator) -> None:
        """Compute adjacency: nodes are linked iff some components are
        within the linking radius (Step 4's E-relation)."""
        adjacency: List[Set[int]] = [set() for _ in self.nodes]
        for node in self.nodes[1:]:
            neighbors = adjacency[node.node_id]
            for component in set(node.elements):
                for other_element in evaluator.ball(component, self.link_radius):
                    for other_id in self._containing.get(other_element, ()):
                        if other_id != node.node_id:
                            neighbors.add(other_id)
        # Symmetrize (ball membership is symmetric, but repeated elements
        # and caching make an explicit pass cheap insurance).
        for node_id, neighbors in enumerate(adjacency):
            for other_id in neighbors:
                adjacency[other_id].add(node_id)
        self.adjacency = [frozenset(neighbors) for neighbors in adjacency]

    def clone(self, copy_colors: bool = False) -> "ColoredGraph":
        """Structural copy with fresh (empty) per-node color data.

        Node existence, ids, and adjacency depend only on
        ``(structure, k, link_radius)`` — the per-query part is the unit
        vectors, which the pipeline attaches afterwards.  Cloning lets
        :mod:`repro.engine` share the expensive cluster enumeration and
        edge computation across every query at the same arity and radius
        while keeping each pipeline's colors isolated.

        With ``copy_colors=True`` the per-node unit vectors are copied
        too (into fresh dicts, so later maintenance on either side stays
        isolated) — the warm-fork path of :class:`repro.session.Database`
        uses this to hand a forked head an already-colored graph instead
        of rebuilding it cold.
        """
        twin = ColoredGraph(self.structure, self.link_radius, self.k)
        twin.nodes = [
            VNode(
                node.node_id,
                node.elements,
                node.positions,
                dict(node.unit_values) if copy_colors else {},
            )
            for node in self.nodes
        ]
        twin._by_key = dict(self._by_key)
        # Adjacency sets are frozen after finalize_edges(); sharing them is
        # safe until a clone calls make_mutable(), which replaces the list.
        twin.adjacency = [frozenset(neighbors) for neighbors in self.adjacency]
        twin._containing = {
            element: list(ids) for element, ids in self._containing.items()
        }
        return twin

    # -- dynamic surgery (used by repro.core.dynamic) ---------------------

    def make_mutable(self) -> None:
        """Replace frozen adjacency sets with mutable ones (idempotent)."""
        if self.adjacency and isinstance(self.adjacency[0], frozenset):
            self.adjacency = [set(neighbors) for neighbors in self.adjacency]  # type: ignore[assignment]

    def remove_node(self, node_id: int) -> None:
        """Detach a node: key map, containment index, and adjacency.

        The VNode object stays in ``nodes`` as a tombstone so ids remain
        stable; callers must have removed the id from their own lists.
        """
        node = self.nodes[node_id]
        self._by_key.pop((node.elements, node.positions), None)
        for element in set(node.elements):
            bucket = self._containing.get(element)
            if bucket is not None and node_id in bucket:
                bucket.remove(node_id)
        for neighbor in list(self.adjacency[node_id]):
            self.adjacency[neighbor].discard(node_id)  # type: ignore[union-attr]
        self.adjacency[node_id] = set()  # type: ignore[assignment]
        node.unit_values.clear()

    def connect_node(self, node_id: int, evaluator: LocalEvaluator) -> None:
        """(Re)compute one node's edges and insert them symmetrically.

        ``adjacency`` must be mutable; grows the adjacency table for
        freshly appended nodes.
        """
        while len(self.adjacency) < len(self.nodes):
            self.adjacency.append(set())  # type: ignore[arg-type]
        node = self.nodes[node_id]
        neighbors: Set[int] = set()
        for component in set(node.elements):
            for other_element in evaluator.ball(component, self.link_radius):
                for other_id in self._containing.get(other_element, ()):
                    if other_id != node_id:
                        neighbors.add(other_id)
        self.adjacency[node_id] = neighbors  # type: ignore[assignment]
        for neighbor in neighbors:
            self.adjacency[neighbor].add(node_id)  # type: ignore[union-attr]

    def nodes_containing(self, element: Element):
        """Ids of live nodes having ``element`` as a component."""
        return tuple(self._containing.get(element, ()))

    # -- accessors --------------------------------------------------------

    def node_id(self, elements: Tuple[Element, ...], positions: PositionSet):
        """Lookup ``v_(b-bar, S)``; None when absent (tuple not connected)."""
        return self._by_key.get((elements, positions))

    def node(self, node_id: int) -> VNode:
        return self.nodes[node_id]

    def adjacent(self, left: int, right: int) -> bool:
        return right in self.adjacency[left]

    def neighbors(self, node_id: int) -> FrozenSet[int]:
        return self.adjacency[node_id]

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def max_degree(self) -> int:
        if not self.adjacency:
            raise EvaluationError("finalize_edges() has not run")
        return max((len(neighbors) for neighbors in self.adjacency), default=0)

    def edge_count(self) -> int:
        return sum(len(neighbors) for neighbors in self.adjacency) // 2


def build_colored_graph(
    structure: Structure,
    evaluator: LocalEvaluator,
    k: int,
    link_radius: int,
    max_nodes: int = 5_000_000,
) -> ColoredGraph:
    """Steps 3-4 of Proposition 3.4: enumerate cluster tuples and edges.

    For every element ``a`` (in domain order) we enumerate the connected
    vertex sets of the "distance <= link_radius" graph that contain ``a``
    and have at most ``k`` members, then every tuple over such a set that
    uses all its members and starts at ``a``, then every position set of
    the right size.  Total cost ``O(n * d^{h(k, r)})`` as in the paper.

    Every iteration over set-typed intermediates is sorted by the domain
    order, so node ids depend only on the structure's content — never on
    the process's hash seed.  The engine's process mode relies on this:
    workers rebuild the graph independently and shard branch lists by
    *position*, which is only sound if every rebuild agrees on the order.
    """
    graph = ColoredGraph(structure, link_radius, k)
    if k == 0:
        graph.finalize_edges(evaluator)
        return graph

    rank = structure.order.rank
    sorted_ball: Dict[Element, Tuple[Element, ...]] = {}

    def link_neighbors(element: Element):
        cached = sorted_ball.get(element)
        if cached is None:
            cached = tuple(
                sorted(
                    (
                        other
                        for other in evaluator.ball(element, link_radius)
                        if other != element
                    ),
                    key=rank,
                )
            )
            sorted_ball[element] = cached
        return cached

    position_sets: Dict[int, List[PositionSet]] = {
        size: list(combinations(range(k), size)) for size in range(1, k + 1)
    }
    for seed in structure.domain:
        for members in connected_subsets(seed, link_neighbors, k):
            ordered_members = tuple(sorted(members, key=rank))
            # Tuples of every length >= |members| that use all members and
            # start at the seed.
            for length in range(len(members), k + 1):
                for rest in product(ordered_members, repeat=length - 1):
                    if set(rest) | {seed} != members:
                        continue
                    elements = (seed,) + rest
                    for positions in position_sets[length]:
                        graph.add_node(elements, positions)
                        if graph.node_count > max_nodes:
                            raise UnsupportedQueryError(
                                f"colored graph exceeds {max_nodes} nodes; "
                                "reduce the query arity/radius or the degree"
                            )
    graph.finalize_edges(evaluator)
    return graph
