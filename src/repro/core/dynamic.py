"""Dynamic updates: maintain the preprocessing under fact insertions and
deletions.

The paper's conclusion poses this as the natural follow-up ("it would be
desirable to update efficiently the data structure ... without
recomputing everything from scratch"), solved later by Vigny
[arXiv:2010.02982] with ``O(n^eps)`` update time.  This module provides a
*local-recomputation* maintainer in that spirit:

* a fact touching elements ``S`` can only affect colored-graph nodes,
  colors, and edges within a radius-``rho`` ball around ``S``, where
  ``rho = k * (2r+1) + 2r + 2`` depends only on the query — because node
  existence (cluster connectivity), node colors (r-local unit formulas),
  and edges (linking distance) are all neighborhood-determined;
* the update procedure removes every node with a component in that ball,
  re-enumerates cluster tuples seeded there against the *new* structure,
  re-evaluates their colors, and splices the branch lists — everything
  else is untouched.

Cost per update: ``O(d^{h(|q|)})`` — independent of ``n`` up to the list
splicing (kept sorted with bisect), versus full re-preprocessing at
``O(n^{1+eps})``.

**Supported fragment.**  Queries whose localization introduced *no
derived predicates and no counting atoms* — i.e. the localized formula is
built from atoms, distance atoms and relativized quantifiers.  Counting
atoms compare against structure-wide totals (``|U|``), which a single
update shifts *globally*; maintaining them needs Vigny's heavier
machinery and is out of scope here (raises
:class:`UnsupportedQueryError`).

The machinery lives in :class:`PipelineMaintainer`, which maintains *one*
pipeline in place and is what :class:`repro.session.Database` attaches to
every eligible cached plan.  :class:`DynamicQuery` is the legacy
single-query facade over it (deprecated — use
``Database.insert_fact`` / ``Database.remove_fact``).
"""

from __future__ import annotations

import warnings
from bisect import bisect_left, insort
from typing import Hashable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.counting import count_answers
from repro.core.enumeration import enumerate_answers
from repro.core.pipeline import Pipeline
from repro.core.testing import test_answer
from repro.errors import UnsupportedQueryError
from repro.fo import coerce_formula
from repro.fo.syntax import CountCmp, Var, subformulas
from repro.storage.cost_model import CostMeter
from repro.structures.gaifman_graph import ball_of_set
from repro.structures.structure import Structure

Element = Hashable


def maintenance_blockers(pipeline: Pipeline) -> List[str]:
    """Why a pipeline cannot be locally maintained (empty = eligible)."""
    blockers: List[str] = []
    localized = pipeline.localized
    if localized.derived_formulas:
        blockers.append(
            "localization materialized derived predicates (unrelativized "
            "quantifiers with far witnesses); see [Vig20] for the general "
            "machinery"
        )
    if pipeline.trivial is None and any(
        isinstance(node, CountCmp) for node in subformulas(localized.formula)
    ):
        blockers.append(
            "counting atoms compare against structure-wide totals"
        )
    return blockers


def supports_maintenance(pipeline: Pipeline) -> bool:
    """True when :class:`PipelineMaintainer` can keep the pipeline fresh."""
    return not maintenance_blockers(pipeline)


UpdateOp = Tuple[bool, str, Tuple[Element, ...]]


def net_effects(
    structure: Structure, ops: Sequence[UpdateOp]
) -> List[UpdateOp]:
    """The net fact changes of replaying ``ops`` in order on ``structure``.

    Each op is ``(insert, relation, elements)`` with replay semantics
    matching ``add_fact``/``remove_fact``: inserting a present fact and
    removing an absent one are no-ops, and a remove-then-reinsert of the
    same fact cancels out.  The result contains exactly one op per fact
    whose final presence differs from its initial presence — what a
    batch commit actually needs to apply and maintain.  Order follows
    first touch, so replaying the result is deterministic.
    """
    initial: dict = {}
    final: dict = {}
    touch_order: List[Tuple[str, Tuple[Element, ...]]] = []
    for insert, relation, elements in ops:
        fact = (relation, tuple(elements))
        if fact not in initial:
            initial[fact] = structure.has_fact(relation, *fact[1])
            final[fact] = initial[fact]
            touch_order.append(fact)
        final[fact] = bool(insert)
    return [
        (final[fact], fact[0], fact[1])
        for fact in touch_order
        if final[fact] != initial[fact]
    ]


def apply_ops(structure: Structure, ops: Sequence[UpdateOp]) -> None:
    """Apply ``(insert, relation, elements)`` triples to ``structure``
    in order (the one op-application loop every commit path shares)."""
    for insert, relation, elements in ops:
        if insert:
            structure.add_fact(relation, *elements)
        else:
            structure.remove_fact(relation, *elements)


class PipelineMaintainer:
    """Keeps one built :class:`Pipeline` consistent under fact updates.

    The maintainer does not own the mutation: callers that coordinate
    several pipelines over one structure (:class:`repro.session.Database`)
    use the split-phase API — :meth:`reach` before *and* after the
    mutation, then :meth:`refresh` — so the structure is mutated exactly
    once.  :meth:`insert_fact` / :meth:`delete_fact` bundle the phases for
    the single-pipeline case.
    """

    def __init__(self, pipeline: Pipeline):
        blockers = maintenance_blockers(pipeline)
        if blockers:
            raise UnsupportedQueryError(
                "dynamic updates do not support this query: "
                + "; ".join(blockers)
            )
        self.pipeline = pipeline
        self.structure: Structure = pipeline.structure
        if pipeline.graph is not None:
            pipeline.graph.make_mutable()
        self.updates_applied = 0

    # ------------------------------------------------------------------
    # Single-pipeline mutations (the DynamicQuery path)
    # ------------------------------------------------------------------

    def insert_fact(self, relation: str, *elements: Element) -> bool:
        """Insert a fact and refresh the affected region."""
        if self.structure.has_fact(relation, *elements):
            return False
        # The region is the union of the touched elements' reach *before*
        # and *after* the mutation: an inserted edge extends reach, a
        # deleted one used to provide it.
        region = self.reach(elements)
        self.structure.add_fact(relation, *elements)
        region |= self.reach(elements)
        self.refresh(elements, region)
        return True

    def delete_fact(self, relation: str, *elements: Element) -> bool:
        """Delete a fact and refresh the affected region."""
        if not self.structure.has_fact(relation, *elements):
            return False
        region = self.reach(elements)
        self.structure.remove_fact(relation, *elements)
        region |= self.reach(elements)
        self.refresh(elements, region)
        return True

    def apply_batch(self, ops: Sequence[UpdateOp]) -> int:
        """Apply many fact updates with *one* local-recomputation pass.

        ``ops`` are ``(insert, relation, elements)`` triples replayed in
        order; no-ops and cancelling pairs are netted out first
        (:func:`net_effects`).  The refresh region is the union of the
        touched elements' reach *before* and *after* the whole batch —
        sound because maintenance only has to reconcile the initial and
        final structures (intermediate states are unobservable), and
        every node whose neighborhood-determined data differs between
        them lies within the query radius of a changed fact in one of
        the two Gaifman graphs.  Returns the number of effective
        updates; zero means nothing was touched (and no refresh ran).

        INVARIANT SHARED WITH THE SESSION: the multi-maintainer commit
        (``Database._commit_in_place_locked``) runs this exact
        pre-reach / apply-once / post-reach / refresh sequence per
        maintainer; a change to the region computation here must be
        mirrored there (and vice versa) or batched and per-fact
        maintenance silently diverge.
        """
        effective = net_effects(self.structure, ops)
        if not effective:
            return 0
        touched = tuple(
            {element for _, _, elements in effective for element in elements}
        )
        region = self.reach(touched)
        apply_ops(self.structure, effective)
        region |= self.reach(touched)
        self.refresh(touched, region)
        return len(effective)

    def reach(self, touched: Sequence[Element]) -> Set[Element]:
        """Every element an update to ``touched`` can affect (one side)."""
        return set(
            ball_of_set(self.structure, set(touched), self.refresh_radius)
        )

    @property
    def refresh_radius(self) -> int:
        """How far an update can reach (query-dependent, n-independent).

        Every quantity attached to a node — existence (pairwise component
        distances <= 2r+1 for cluster connectivity), colors (r-local unit
        evaluations around components, including distance atoms whose
        paths may route through a changed edge), and its edges (component
        distances <= 2r+1) — changes only if some *component* lies within
        the linking radius ``2r+1`` of a touched element: any changed
        distance or visible fact is anchored at a component with a path of
        length at most ``r + bound <= 2r+1`` to the touched elements.  One
        extra unit of slack is kept for safety.
        """
        return self.pipeline.link_radius + 1

    # ------------------------------------------------------------------
    # Local recomputation
    # ------------------------------------------------------------------

    def refresh(self, touched: Sequence[Element], region: Set[Element]) -> bool:
        """Re-derive every neighborhood-determined quantity in ``region``.

        ``region`` must be the union of :meth:`reach` computed before and
        after the structure mutation was applied.

        Returns whether the pipeline's *durable* plan state changed —
        i.e. graph surgery removed or regenerated nodes (cleared memo
        caches rebuild on demand and do not count).  The session uses
        this as the dirty flag for incremental checkpoint spills.
        """
        self.updates_applied += 1
        pipeline = self.pipeline
        evaluator = pipeline.evaluator
        # Stale caches: balls and memoized local evaluations may cross the
        # modified facts; unary sets change on unary-fact updates.
        evaluator._ball_cache.clear()
        evaluator._memo.clear()
        evaluator._unary_cache.clear()
        # Armed enumerators hold skip/reach memos over the old graph.
        if hasattr(pipeline, "_armed_branches"):
            del pipeline._armed_branches
        if pipeline.trivial is not None:
            return False
        graph = pipeline.graph
        assert graph is not None

        # 1. Remove every node with a component in the region, splicing it
        #    out of its (plan, block, vector) buckets before the graph
        #    surgery clears the stored vectors.
        dead: Set[int] = set()
        for element in region:
            dead.update(graph.nodes_containing(element))
        for node_id in dead:
            node = graph.node(node_id)
            for plan_index, vector in node.unit_values.items():
                key = (plan_index, node.positions, vector)
                bucket = pipeline.block_vector_index.get(key)
                if bucket is not None:
                    position = bisect_left(bucket, node_id)
                    if position < len(bucket) and bucket[position] == node_id:
                        del bucket[position]
            graph.remove_node(node_id)

        # 2. Re-enumerate cluster tuples around the region.  Tuples
        #    intersecting it have their first component within
        #    (k-1)*link of it.
        k = pipeline.arity
        link = pipeline.link_radius
        seeds = ball_of_set(self.structure, region, (k - 1) * link)
        new_ids = self._regenerate_nodes(seeds, region)

        # 3. Colors, edges, and list membership for the new nodes.
        for node_id in new_ids:
            self._attach_node(node_id)
        return bool(dead) or bool(new_ids)

    def _regenerate_nodes(self, seeds, region) -> List[int]:
        """Steps 3 of Prop 3.4, restricted to tuples meeting the region."""
        from itertools import combinations, product

        pipeline = self.pipeline
        graph = pipeline.graph
        assert graph is not None
        evaluator = pipeline.evaluator
        k = pipeline.arity
        link = pipeline.link_radius
        order_rank = self.structure.order.rank

        def link_neighbors(element):
            # Sorted like build_colored_graph: regenerated node ids must
            # not depend on hash-seed set order.
            return sorted(
                (
                    other
                    for other in evaluator.ball(element, link)
                    if other != element
                ),
                key=order_rank,
            )

        from repro.util.itertools2 import connected_subsets

        position_sets = {
            size: list(combinations(range(k), size)) for size in range(1, k + 1)
        }
        new_ids: List[int] = []
        ordered_seeds = sorted(seeds, key=order_rank)
        for seed in ordered_seeds:
            for members in connected_subsets(seed, link_neighbors, k):
                if not (members & region):
                    continue  # untouched tuples are still alive
                ordered_members = tuple(sorted(members, key=order_rank))
                for length in range(len(members), k + 1):
                    for rest in product(ordered_members, repeat=length - 1):
                        if set(rest) | {seed} != members:
                            continue
                        elements = (seed,) + rest
                        for positions in position_sets[length]:
                            before = graph.node_count
                            node_id = graph.add_node(elements, positions)
                            if graph.node_count > before:
                                new_ids.append(node_id)
        return new_ids

    def _attach_node(self, node_id: int) -> None:
        """Colors + edges + branch-list membership for one new node."""
        pipeline = self.pipeline
        graph = pipeline.graph
        assert graph is not None
        node = graph.node(node_id)
        graph.connect_node(node_id, pipeline.evaluator)
        for plan in pipeline.plans:
            for block_index, block in enumerate(plan.partition):
                if block != node.positions:
                    continue
                if plan.constant is not None:
                    vector: Tuple[bool, ...] = ()
                else:
                    assignment = {
                        pipeline.variables[position]: element
                        for position, element in zip(node.positions, node.elements)
                    }
                    vector = tuple(
                        pipeline.evaluator.holds(plan.units[unit_index], assignment)
                        for unit_index in plan.block_units[block_index]
                    )
                node.unit_values[plan.index] = vector
                key = (plan.index, block, vector)
                bucket = pipeline.block_vector_index.setdefault(key, [])
                insort(bucket, node_id)


class DynamicQuery:
    """A prepared query that stays consistent while facts change.

    .. deprecated::
        Use :class:`repro.session.Database` — ``db.insert_fact()`` /
        ``db.remove_fact()`` maintain *every* eligible cached plan through
        the same machinery.

    The wrapped structure is mutated in place through
    :meth:`insert_fact` / :meth:`delete_fact`; the domain is fixed.
    """

    def __init__(
        self,
        structure: Structure,
        query,
        order: Optional[Sequence[Var]] = None,
        eps: float = 0.5,
    ):
        warnings.warn(
            "DynamicQuery is deprecated; use repro.session.Database — "
            "db.insert_fact()/db.remove_fact() maintain every eligible "
            "cached plan",
            DeprecationWarning,
            stacklevel=2,
        )
        query = coerce_formula(query)
        self.structure = structure
        self.pipeline = Pipeline(structure, query, order=order, eps=eps)
        self._maintainer = PipelineMaintainer(self.pipeline)

    @property
    def updates_applied(self) -> int:
        return self._maintainer.updates_applied

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert_fact(self, relation: str, *elements: Element) -> None:
        """Insert a fact and refresh the affected region."""
        self._maintainer.insert_fact(relation, *elements)

    def delete_fact(self, relation: str, *elements: Element) -> None:
        """Delete a fact and refresh the affected region."""
        self._maintainer.delete_fact(relation, *elements)

    # ------------------------------------------------------------------
    # The three operations (delegation)
    # ------------------------------------------------------------------

    def count(self, meter: Optional[CostMeter] = None) -> int:
        return count_answers(self.pipeline, meter)

    def test(self, candidate: Sequence[Element], meter: Optional[CostMeter] = None) -> bool:
        return test_answer(self.pipeline, candidate, meter)

    def enumerate(self, meter: Optional[CostMeter] = None) -> Iterator[Tuple[Element, ...]]:
        return enumerate_answers(self.pipeline, meter=meter)

    def answers(self) -> List[Tuple[Element, ...]]:
        return list(self.enumerate())

    @property
    def arity(self) -> int:
        return self.pipeline.arity

    @property
    def refresh_radius(self) -> int:
        return self._maintainer.refresh_radius
