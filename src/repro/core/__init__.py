"""The paper's algorithms: quantifier elimination (Proposition 3.4),
counting (Theorem 2.5), testing (Theorem 2.6), constant-delay enumeration
(Theorem 2.7), model checking (Theorem 2.4), connected conjunctive queries
(Lemma 3.2), and the naive baselines."""

from repro.core.api import PreparedQuery, prepare
from repro.core.baselines import ListJoinBaseline, product_count, product_enumerate
from repro.core.ccq import count_ccq, evaluate_ccq, parse_ccq
from repro.core.counting import count_answers
from repro.core.dynamic import DynamicQuery
from repro.core.enumeration import (
    BranchEnumerator,
    SkipList,
    arm_enumerators,
    enumerate_answers,
)
from repro.core.model_checking import model_check
from repro.core.pipeline import Pipeline
from repro.core.testing import AnswerTester, test_answer

__all__ = [
    "AnswerTester",
    "BranchEnumerator",
    "DynamicQuery",
    "ListJoinBaseline",
    "Pipeline",
    "PreparedQuery",
    "SkipList",
    "arm_enumerators",
    "count_answers",
    "count_ccq",
    "enumerate_answers",
    "evaluate_ccq",
    "model_check",
    "parse_ccq",
    "prepare",
    "product_count",
    "product_enumerate",
    "test_answer",
]
