"""Constant-time answer testing (Proposition 3.8, Theorem 2.6).

After the pipeline's pseudo-linear preprocessing, testing whether a tuple
``a-bar`` belongs to ``q(A)`` is:

1. encode ``f(a-bar)``: the induced partition (``O(k^2)`` cached-ball
   membership tests) and one node lookup per block;
2. read each node's stored unit vector — the colors ``C_{P,j,t}``;
3. check the combined sign vector against the partition's satisfying
   clause set, and that no two nodes are adjacent (``psi_1``).

Every step is independent of ``|A|`` and of the degree.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.core.pipeline import Pipeline
from repro.errors import QueryError
from repro.storage.cost_model import CostMeter, tick

Element = Hashable


class AnswerTester:
    """Callable wrapper around one prepared pipeline."""

    def __init__(self, pipeline: Pipeline):
        self.pipeline = pipeline

    def __call__(
        self, candidate: Sequence[Element], meter: Optional[CostMeter] = None
    ) -> bool:
        return test_answer(self.pipeline, candidate, meter)


def test_answer(
    pipeline: Pipeline,
    candidate: Sequence[Element],
    meter: Optional[CostMeter] = None,
) -> bool:
    """Test ``candidate in q(A)`` in constant time."""
    # (pytest: this is library code, not a test.)
    if len(candidate) != pipeline.arity:
        raise QueryError(
            f"expected a {pipeline.arity}-tuple, got {len(candidate)}-tuple"
        )
    if pipeline.trivial is not None:
        for element in candidate:
            if element not in pipeline.structure:
                raise QueryError(f"element {element!r} is not in the domain")
        tick(meter, "test.trivial")
        return pipeline.trivial
    plan_index, node_ids = pipeline.encode(candidate)
    tick(meter, "test.encode", count=pipeline.arity * pipeline.arity)
    plan = pipeline.plans[plan_index]
    if plan.constant is not None:
        verdict = plan.constant
    else:
        assert pipeline.graph is not None
        signs: list = [False] * len(plan.units)
        for block_index, node_id in enumerate(node_ids):
            node = pipeline.graph.node(node_id)
            vector = node.unit_values.get(plan_index)
            if vector is None:  # pragma: no cover - vectors cover all blocks
                raise QueryError("node has no colors for this partition")
            for unit_index, value in zip(plan.block_units[block_index], vector):
                signs[unit_index] = value
            tick(meter, "test.colors")
        verdict = tuple(signs) in plan.clause_set
    if not verdict:
        return False
    # psi_1: chosen nodes pairwise non-adjacent.  By construction of the
    # induced partition this always holds; the check is O(k^2) lookups.
    assert pipeline.graph is not None
    for i, left in enumerate(node_ids):
        for right in node_ids[i + 1 :]:
            tick(meter, "test.adjacency")
            if pipeline.graph.adjacent(left, right):  # pragma: no cover
                return False
    return True


# Keep pytest from collecting the library function as a test.
test_answer.__test__ = False  # type: ignore[attr-defined]
