"""Constant-delay enumeration (Proposition 3.10, Theorem 2.7).

Each branch ``(P, t)`` asks for tuples choosing one node per block from the
branch's lists, pairwise non-adjacent in the colored graph.  Enumeration
follows the paper's two key devices:

* **The skip function** (the "main technical originality" of the paper):
  when iterating a block list in the fixed linear order, ``skip(y, V)``
  jumps in constant time from a blocked candidate ``y`` to the next list
  element not adjacent to any node in ``V``, where ``V`` is the subset of
  the current prefix that is ``E_l``-related to ``y``.  The relations
  ``E_1 subset E_2 subset ...`` are the paper's next-pointer closures: they
  ensure the restriction of the prefix to ``V`` loses no adjacency
  information along the skip chain.

* **The big/small block dichotomy** (the paper's intro: components close
  to each other admit few answers which can be precomputed; far components
  are handled by skipping).  Blocks whose list is short (at most
  ``(l-1) * max_degree(G)``) are ground to an explicit table of jointly
  compatible assignments during preprocessing; the remaining *big* lists
  can never be exhausted by at most ``l-1`` placed blockers, so every
  prefix extends to a full answer and the nested iteration never stalls.
  This replaces the paper's re-invocation of the full quantifier
  elimination on the prefix query ``theta'`` (their induction on arity)
  with an equivalent extendability guarantee.

``skip_mode`` selects how skip values are produced:

* ``"lazy"`` (default): computed on first use and memoized — identical
  output, amortized-constant delay; avoids the paper's
  ``d-hat^(3 k^2)``-sized precomputation.
* ``"precompute"``: the paper's strict worst-case-constant-delay variant;
  all reach sets and skip cells are filled during preprocessing (guarded
  by a budget — this is exactly the "huge constants" regime).
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Dict, FrozenSet, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.colored_graph import ColoredGraph
from repro.core.pipeline import Branch, Pipeline
from repro.errors import EvaluationError, UnsupportedQueryError
from repro.storage.cost_model import CostMeter, tick

Element = Hashable


class SkipList:
    """The skip machinery for one block list (the paper's list ``P(G)``).

    ``arity`` is the number of blocks ``l`` of the branch: prefixes have at
    most ``l - 1`` nodes, so the relevant closure is ``E_l``.
    """

    def __init__(self, graph: ColoredGraph, nodes: Sequence[int], arity: int):
        self.graph = graph
        self.nodes = list(nodes)
        self.arity = arity
        self._index: Dict[int, int] = {
            node: position for position, node in enumerate(self.nodes)
        }
        self._reach: Dict[int, FrozenSet[int]] = {}
        self._skip: Dict[Tuple[int, FrozenSet[int]], Optional[int]] = {}

    # -- list order ------------------------------------------------------

    def first(self) -> Optional[int]:
        return self.nodes[0] if self.nodes else None

    def next(self, node: int) -> Optional[int]:
        position = self._index[node] + 1
        if position >= len(self.nodes):
            return None
        return self.nodes[position]

    def __len__(self) -> int:
        return len(self.nodes)

    # -- E_l closure -------------------------------------------------------

    def reach(self, node: int) -> FrozenSet[int]:
        """``{u : (u, node) in E_l}``: the paper's inductive closure.

        ``E_1(u, y) = E'(u, y)``;
        ``E_{i+1}(u, y) = E_i(u, y) or exists z, z', v:
        E'(z, u) and next(z', z) and E'(v, z') and E_i(v, y)``.
        """
        cached = self._reach.get(node)
        if cached is not None:
            return cached
        current = set(self.graph.neighbors(node))
        for _ in range(self.arity - 1):
            addition: set = set()
            for v in current:
                for z_prime in self.graph.neighbors(v):
                    if z_prime not in self._index:
                        continue
                    z = self.next(z_prime)
                    if z is None:
                        continue
                    addition |= self.graph.neighbors(z)
            if addition <= current:
                break
            current |= addition
        result = frozenset(current)
        self._reach[node] = result
        return result

    def relevant(self, prefix: Sequence[int], node: int) -> FrozenSet[int]:
        """``V``: the prefix nodes ``E_l``-related to ``node``."""
        reachable = self.reach(node)
        return frozenset(v for v in prefix if v in reachable)

    # -- skip ---------------------------------------------------------------

    def skip(
        self, node: int, blockers: FrozenSet[int], meter: Optional[CostMeter] = None
    ) -> Optional[int]:
        """Smallest list element >= ``node`` not adjacent to any blocker."""
        key = (node, blockers)
        if key in self._skip:
            tick(meter, "enum.skip_hit")
            return self._skip[key]
        current: Optional[int] = node
        while current is not None:
            tick(meter, "enum.skip_walk")
            neighbors = self.graph.adjacency[current]
            if not any(blocker in neighbors for blocker in blockers):
                break
            current = self.next(current)
        self._skip[key] = current
        return current

    def precompute(self, max_cells: int) -> int:
        """Fill every reach set and skip cell (the paper's strict mode).

        Returns the number of skip cells materialized; raises
        :class:`UnsupportedQueryError` when the budget is exceeded — that
        is the ``d-hat^(3k^2)`` constant the paper itself flags.
        """
        cells = 0
        for node in self.nodes:
            reachable = sorted(self.reach(node))
            for size in range(0, self.arity):
                for subset in combinations(reachable, size):
                    cells += 1
                    if cells > max_cells:
                        raise UnsupportedQueryError(
                            f"strict skip precomputation exceeds {max_cells} "
                            "cells; use skip_mode='lazy'"
                        )
                    self.skip(node, frozenset(subset))
        return cells


class BranchEnumerator:
    """Constant-delay enumeration of one branch."""

    def __init__(
        self,
        pipeline: Pipeline,
        branch: Branch,
        skip_mode: str = "lazy",
        max_small_table: int = 2_000_000,
        max_skip_cells: int = 2_000_000,
    ):
        if skip_mode not in ("lazy", "precompute"):
            raise ValueError(f"unknown skip_mode {skip_mode!r}")
        assert pipeline.graph is not None
        self.graph: ColoredGraph = pipeline.graph
        self.branch = branch
        self.block_count = len(branch.lists)
        # A block can be starved only by nodes placed for *other* blocks;
        # each placed node excludes at most its own degree of candidates.
        max_degree_of = [
            max(
                (len(self.graph.adjacency[node]) for node in node_list),
                default=0,
            )
            for node_list in branch.lists
        ]
        total_degree = sum(max_degree_of)
        self.small_blocks = [
            j
            for j, node_list in enumerate(branch.lists)
            if len(node_list) <= total_degree - max_degree_of[j]
        ]
        # Enumerate small blocks shortest-list-first: dead subtrees are
        # pruned as early as possible.
        self.small_blocks.sort(key=lambda j: len(branch.lists[j]))
        self.big_blocks = [
            j for j in range(self.block_count) if j not in self.small_blocks
        ]
        self.skip_lists: Dict[int, SkipList] = {
            j: SkipList(self.graph, branch.lists[j], self.block_count)
            for j in self.big_blocks
        }
        self.skip_cells = 0
        self.small_table: Optional[List[Tuple[int, ...]]] = None
        if skip_mode == "precompute":
            for skip_list in self.skip_lists.values():
                self.skip_cells += skip_list.precompute(max_skip_cells)
            self.small_table = self._materialize_small_table(max_small_table)

    # ------------------------------------------------------------------

    def _small_assignments(
        self,
        meter: Optional[CostMeter] = None,
        first_slice: Optional[Tuple[int, Optional[int]]] = None,
    ) -> Iterator[Tuple[int, ...]]:
        """Jointly compatible assignments of the small blocks, by DFS.

        Every small list has at most ``sum of other blocks' max degrees``
        entries, so the DFS subtree between two valid leaves has size
        bounded by ``(k * d-hat)^k`` — a constant of the same order as the
        paper's skip-table, independent of ``n``.  Lazy enumeration keeps
        memory bounded (the eager table can reach the budget on 3-ary
        branches).

        ``first_slice=(start, stop)`` restricts the *first* (outermost)
        small block's candidate list — shards rooted at disjoint list
        slices walk disjoint DFS subtrees, so sharded enumeration does no
        redundant work and slice-order concatenation is exact.
        """
        if not self.small_blocks:
            yield ()
            return
        lists = [self.branch.lists[j] for j in self.small_blocks]
        if first_slice is not None:
            start, stop = first_slice
            lists[0] = lists[0][start:stop]
        chosen: List[int] = []

        def extend(depth: int) -> Iterator[Tuple[int, ...]]:
            if depth == len(lists):
                yield tuple(chosen)
                return
            for candidate in lists[depth]:
                tick(meter, "enum.small_dfs")
                neighbors = self.graph.adjacency[candidate]
                if any(previous in neighbors for previous in chosen):
                    continue
                chosen.append(candidate)
                yield from extend(depth + 1)
                chosen.pop()

        yield from extend(0)

    def _materialize_small_table(self, max_small_table: int) -> List[Tuple[int, ...]]:
        """Strict mode: ground the small-block table during preprocessing."""
        table: List[Tuple[int, ...]] = []
        for assignment in self._small_assignments():
            table.append(assignment)
            if len(table) > max_small_table:
                raise UnsupportedQueryError(
                    "small-block table exceeds budget "
                    f"(> {max_small_table}); use skip_mode='lazy'"
                )
        return table

    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return self.enumerate()

    def outer_size(self) -> int:
        """Length of the outermost iteration (the sharding granularity).

        Small-block branches are sharded on the first small block's
        candidate list (disjoint DFS subtrees); branches without small
        blocks on the first big block's list.  A 0-block branch has the
        single empty assignment.
        """
        if self.small_blocks:
            return len(self.branch.lists[self.small_blocks[0]])
        if self.big_blocks:
            return len(self.skip_lists[self.big_blocks[0]])
        return 1

    def enumerate(
        self,
        meter: Optional[CostMeter] = None,
        outer_slice: Optional[Tuple[int, Optional[int]]] = None,
    ) -> Iterator[Tuple[int, ...]]:
        """Yield block assignments (node id per block, in block order).

        ``outer_slice=(start, stop)`` restricts the outermost iteration
        to positions ``[start, stop)`` — the engine's intra-branch
        sharding hook.  Shards are independent (no shared cursor), and
        concatenating them in slice order reproduces the unrestricted
        enumeration exactly, because the outermost loop advances in a
        fixed order regardless of what the inner levels produce.
        """
        start, stop = outer_slice if outer_slice is not None else (0, None)
        assignment: List[Optional[int]] = [None] * self.block_count
        if self.small_blocks:
            if self.small_table is not None:
                if outer_slice is None:
                    small_source: Iterator[Tuple[int, ...]] = iter(self.small_table)
                else:
                    # Table rows are in DFS order, grouped by the first
                    # block's candidate; keeping the slice's candidates
                    # selects a contiguous row range.
                    allowed = set(
                        self.branch.lists[self.small_blocks[0]][start:stop]
                    )
                    small_source = iter(
                        [row for row in self.small_table if row[0] in allowed]
                    )
            else:
                small_source = self._small_assignments(
                    meter, first_slice=outer_slice
                )
            for small_assignment in small_source:
                tick(meter, "enum.small_advance")
                for block, node in zip(self.small_blocks, small_assignment):
                    assignment[block] = node
                yield from self._extend(
                    0, assignment, list(small_assignment), meter
                )
            return
        if not self.big_blocks:
            # 0 blocks: the empty tuple is the single answer.
            if start == 0:
                tick(meter, "enum.output")
                yield tuple(assignment)  # type: ignore[arg-type]
            return
        # No small blocks: the outermost level is the first big block's
        # list, walked in list order (the prefix is empty there, so the
        # skip function degenerates to the identity and a contiguous
        # slice of the list is a contiguous slice of the iteration).
        block = self.big_blocks[0]
        skip_list = self.skip_lists[block]
        for current in skip_list.nodes[start:stop]:
            tick(meter, "enum.relevant", count=1)
            candidate = skip_list.skip(current, frozenset(), meter)
            assignment[block] = candidate
            yield from self._extend(1, assignment, [candidate], meter)
            assignment[block] = None

    def _extend(
        self,
        big_index: int,
        assignment: List[Optional[int]],
        prefix: List[int],
        meter: Optional[CostMeter],
    ) -> Iterator[Tuple[int, ...]]:
        if big_index == len(self.big_blocks):
            tick(meter, "enum.output")
            yield tuple(assignment)  # type: ignore[arg-type]
            return
        block = self.big_blocks[big_index]
        skip_list = self.skip_lists[block]
        current = skip_list.first()
        while current is not None:
            blockers = skip_list.relevant(prefix, current)
            tick(meter, "enum.relevant", count=len(prefix) + 1)
            candidate = skip_list.skip(current, blockers, meter)
            if candidate is None:
                return
            assignment[block] = candidate
            prefix.append(candidate)
            yield from self._extend(big_index + 1, assignment, prefix, meter)
            prefix.pop()
            assignment[block] = None
            current = skip_list.next(candidate)


def arm_enumerator(
    pipeline: Pipeline, branch_index: int, skip_mode: str = "lazy"
) -> BranchEnumerator:
    """Build (and cache on the pipeline) the enumerator of one branch.

    Arming is preprocessing work: it grounds the small-block tables and,
    in strict mode, fills the skip cells.  Enumerators are stateless
    between runs (their skip/reach memos are functional caches), so they
    are shared by every subsequent enumeration call.  Per-branch caching
    is the engine's splitting hook: parallel workers arm only the
    branches assigned to them.
    """
    cache = getattr(pipeline, "_armed_branches", None)
    if cache is None:
        cache = {}
        pipeline._armed_branches = cache  # type: ignore[attr-defined]
    key = (skip_mode, branch_index)
    enumerator = cache.get(key)
    if enumerator is None:
        enumerator = BranchEnumerator(
            pipeline, pipeline.branches[branch_index], skip_mode=skip_mode
        )
        cache[key] = enumerator
    return enumerator


def arm_enumerators(pipeline: Pipeline, skip_mode: str = "lazy") -> List[BranchEnumerator]:
    """Arm every branch (the serial path's preprocessing step)."""
    return [
        arm_enumerator(pipeline, branch_index, skip_mode)
        for branch_index in range(len(pipeline.branches))
    ]


def trivial_answers(pipeline: Pipeline) -> Iterator[Tuple[Element, ...]]:
    """The answers of a pipeline whose localized formula is constant."""
    if not pipeline.trivial:
        return
    if pipeline.arity == 0:
        yield ()
        return
    yield from product(pipeline.structure.domain, repeat=pipeline.arity)


def enumerate_branch(
    pipeline: Pipeline,
    branch_index: int,
    meter: Optional[CostMeter] = None,
    skip_mode: str = "lazy",
    validate: bool = False,
    outer_slice: Optional[Tuple[int, Optional[int]]] = None,
) -> Iterator[Tuple[Element, ...]]:
    """Enumerate the answers of one branch ``(P, t)``, decoded.

    Branches are mutually exclusive, so the branch answer sets partition
    ``q(A)``; concatenating them in branch-index order reproduces
    :func:`enumerate_answers` exactly.  This is the unit of work
    :mod:`repro.engine` distributes across a pool; ``outer_slice``
    additionally shards *within* the branch (see
    :meth:`BranchEnumerator.enumerate`) so one heavy branch can feed
    many workers.
    """
    assert pipeline.graph is not None
    enumerator = arm_enumerator(pipeline, branch_index, skip_mode)
    plan_index = enumerator.branch.plan.index
    for node_ids in enumerator.enumerate(meter, outer_slice=outer_slice):
        if validate:
            _validate_assignment(pipeline.graph, node_ids)
        yield pipeline.decode(plan_index, node_ids)


def enumerate_answers(
    pipeline: Pipeline,
    meter: Optional[CostMeter] = None,
    skip_mode: str = "lazy",
    validate: bool = False,
) -> Iterator[Tuple[Element, ...]]:
    """Enumerate ``q(A)`` with constant delay after preprocessing.

    Yields answer tuples with no repetition.  ``validate=True`` re-checks
    the skip-function invariant (chosen nodes pairwise non-adjacent) on
    every output — used by the test suite.
    """
    if pipeline.trivial is not None:
        yield from trivial_answers(pipeline)
        return
    for branch_index in range(len(pipeline.branches)):
        yield from enumerate_branch(
            pipeline,
            branch_index,
            meter=meter,
            skip_mode=skip_mode,
            validate=validate,
        )


def _validate_assignment(graph: ColoredGraph, node_ids: Tuple[int, ...]) -> None:
    for i, left in enumerate(node_ids):
        for right in node_ids[i + 1 :]:
            if graph.adjacent(left, right):
                raise EvaluationError(
                    f"skip invariant violated: nodes {left} and {right} "
                    "are adjacent"
                )
