"""Public facade: :func:`prepare` and :class:`PreparedQuery`.

``prepare(structure, query, eps)`` runs the pseudo-linear preprocessing of
Proposition 3.4 once; the returned handle then offers the paper's three
operations at their claimed costs:

* :meth:`PreparedQuery.count` — Theorem 2.5 (already pseudo-linear during
  preprocessing; the call itself reuses the pipeline),
* :meth:`PreparedQuery.test` — Theorem 2.6, constant time per tuple,
* :meth:`PreparedQuery.enumerate` — Theorem 2.7, constant delay.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.counting import count_answers
from repro.core.enumeration import enumerate_answers
from repro.core.pipeline import Pipeline
from repro.core.testing import test_answer
from repro.errors import QueryError
from repro.fo.localize import LocalizationBudget
from repro.fo.parser import parse as parse_query
from repro.fo.syntax import Formula, Var
from repro.storage.cost_model import CostMeter
from repro.structures.structure import Structure

Element = Hashable


class PreparedQuery:
    """A query preprocessed against one structure."""

    def __init__(
        self,
        structure: Structure,
        query: Formula,
        order: Optional[Sequence[Union[Var, str]]] = None,
        eps: float = 0.5,
        budget: Optional[LocalizationBudget] = None,
        skip_mode: str = "lazy",
    ):
        variable_order: Optional[Tuple[Var, ...]] = None
        if order is not None:
            variable_order = tuple(
                var if isinstance(var, Var) else Var(var) for var in order
            )
        self.skip_mode = skip_mode
        self.pipeline = Pipeline(
            structure, query, order=variable_order, eps=eps, budget=budget
        )
        self._count: Optional[int] = None

    # -- the three operations -------------------------------------------

    def count(self, meter: Optional[CostMeter] = None) -> int:
        """``|q(A)|`` (Theorem 2.5).  Cached after the first call.

        Metered calls recompute (the caller wants the step count) but do
        not touch the cache, so instrumentation never changes what later
        unmetered calls observe.
        """
        if meter is not None:
            return count_answers(self.pipeline, meter)
        if self._count is None:
            self._count = count_answers(self.pipeline)
        return self._count

    def test(
        self, candidate: Sequence[Element], meter: Optional[CostMeter] = None
    ) -> bool:
        """Constant-time membership test (Theorem 2.6)."""
        return test_answer(self.pipeline, candidate, meter)

    def enumerate(
        self,
        meter: Optional[CostMeter] = None,
        skip_mode: Optional[str] = None,
        validate: bool = False,
    ) -> Iterator[Tuple[Element, ...]]:
        """Constant-delay enumeration (Theorem 2.7), no repetitions."""
        return enumerate_answers(
            self.pipeline,
            meter=meter,
            skip_mode=skip_mode or self.skip_mode,
            validate=validate,
        )

    def enumerate_parallel(
        self,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        skip_mode: Optional[str] = None,
    ) -> Iterator[Tuple[Element, ...]]:
        """Branch-parallel enumeration via :mod:`repro.engine`.

        Same answers in the same order as :meth:`enumerate`; branches run
        concurrently on a pool chosen by the cost-model heuristic (or
        forced with ``mode`` in ``{"serial", "thread", "process"}``).
        """
        from repro.engine.executor import parallel_enumerate

        return parallel_enumerate(
            self.pipeline,
            workers=workers,
            mode=mode,
            skip_mode=skip_mode or self.skip_mode,
        )

    def answers(self) -> List[Tuple[Element, ...]]:
        """Materialize the full answer set (enumeration, collected)."""
        return list(self.enumerate())

    # -- introspection ------------------------------------------------------

    @property
    def variables(self) -> Tuple[Var, ...]:
        """The free variables, in answer-tuple order."""
        return self.pipeline.variables

    @property
    def arity(self) -> int:
        return self.pipeline.arity

    def stats(self) -> dict:
        """Preprocessing statistics (graph size, branches, radii, ...)."""
        return self.pipeline.stats()

    def explain(self) -> str:
        """A human-readable account of the preprocessing."""
        stats = self.stats()
        localized = self.pipeline.localized
        lines = [
            f"query arity: {stats['arity']} "
            f"({', '.join(v.name for v in self.variables)})",
            f"localized radius r = {stats['radius']} "
            f"(cluster linking distance {stats['link_radius']})",
            f"derived unary predicates: {stats['derived_predicates']}",
            f"partitions considered: {stats['partitions']}",
            f"enumeration branches (P, t): {stats['branches']}",
            f"colored graph: {stats['graph_nodes']} nodes, "
            f"max degree {stats['graph_max_degree']}",
            f"structure: n = {stats['structure_size']}, "
            f"degree d = {stats['structure_degree']}",
        ]
        if localized.derived_formulas:
            lines.append("derived predicates:")
            for name, formula in localized.derived_formulas.items():
                lines.append(f"  {name} := {formula}")
        return "\n".join(lines)


def prepare(
    structure: Structure,
    query: Union[Formula, str],
    order: Optional[Sequence[Union[Var, str]]] = None,
    eps: float = 0.5,
    budget: Optional[LocalizationBudget] = None,
    skip_mode: str = "lazy",
) -> PreparedQuery:
    """Preprocess ``query`` (a formula or query text) against ``structure``."""
    if isinstance(query, str):
        query = parse_query(query)
    if not isinstance(query, Formula):
        raise QueryError(f"expected a Formula or query text, got {type(query)}")
    return PreparedQuery(
        structure, query, order=order, eps=eps, budget=budget, skip_mode=skip_mode
    )
