"""Legacy single-query facade: :func:`prepare` and :class:`PreparedQuery`.

.. deprecated::
    Use :class:`repro.session.Database` — ``db.query(...)`` exposes the
    same three operations plus ``answers()`` paging/streaming, backend
    selection, ``explain()``, and in-place dynamic maintenance.

``prepare(structure, query, eps)`` runs the pseudo-linear preprocessing of
Proposition 3.4 once; the returned handle then offers the paper's three
operations at their claimed costs:

* :meth:`PreparedQuery.count` — Theorem 2.5 (already pseudo-linear during
  preprocessing; the call itself reuses the pipeline),
* :meth:`PreparedQuery.test` — Theorem 2.6, constant time per tuple,
* :meth:`PreparedQuery.enumerate` — Theorem 2.7, constant delay.

The pipeline is built *through* the session layer (one construction code
path: cache, shared graph templates); the metered operation variants
(``meter=``) call the same core primitives the session backends use, so
instrumented runs measure exactly what production serves.
"""

from __future__ import annotations

import warnings
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.counting import count_answers
from repro.core.enumeration import enumerate_answers
from repro.core.testing import test_answer
from repro.fo.localize import LocalizationBudget
from repro.fo.syntax import Formula, Var
from repro.storage.cost_model import CostMeter
from repro.structures.structure import Structure

Element = Hashable


def preprocessing_report(pipeline) -> str:
    """A human-readable account of one pipeline's preprocessing.

    Shared by :meth:`PreparedQuery.explain` and the CLI ``explain``
    command (which pairs it with the session's structured
    :class:`repro.session.QueryPlan`).
    """
    stats = pipeline.stats()
    localized = pipeline.localized
    lines = [
        f"query arity: {stats['arity']} "
        f"({', '.join(v.name for v in pipeline.variables)})",
        f"localized radius r = {stats['radius']} "
        f"(cluster linking distance {stats['link_radius']})",
        f"derived unary predicates: {stats['derived_predicates']}",
        f"partitions considered: {stats['partitions']}",
        f"enumeration branches (P, t): {stats['branches']}",
        f"colored graph: {stats['graph_nodes']} nodes, "
        f"max degree {stats['graph_max_degree']}",
        f"structure: n = {stats['structure_size']}, "
        f"degree d = {stats['structure_degree']}",
    ]
    if localized.derived_formulas:
        lines.append("derived predicates:")
        for name, formula in localized.derived_formulas.items():
            lines.append(f"  {name} := {formula}")
    return "\n".join(lines)


class PreparedQuery:
    """A query preprocessed against one structure (legacy handle)."""

    def __init__(
        self,
        structure: Structure,
        query: Formula,
        order: Optional[Sequence[Union[Var, str]]] = None,
        eps: float = 0.5,
        budget: Optional[LocalizationBudget] = None,
        skip_mode: str = "lazy",
    ):
        from repro.session import Database

        self.skip_mode = skip_mode
        # A private single-query session: construction (parsing, cache,
        # graph templates) goes through the one session code path.  The
        # pool is lazy, so no OS resource is created, and maintenance is
        # off — this facade has no update API.
        self._database = Database(
            structure,
            eps=eps,
            skip_mode=skip_mode,
            maintain=False,
            guard_writes=False,
        )
        self._query = self._database.query(
            query, order=order, budget=budget, skip_mode=skip_mode
        )
        self.pipeline = self._query.pipeline
        self._count: Optional[int] = None

    # -- the three operations -------------------------------------------

    def count(self, meter: Optional[CostMeter] = None) -> int:
        """``|q(A)|`` (Theorem 2.5).  Cached after the first call.

        Metered calls recompute (the caller wants the step count) but do
        not touch the cache, so instrumentation never changes what later
        unmetered calls observe.
        """
        if meter is not None:
            return count_answers(self.pipeline, meter)
        if self._count is None:
            self._count = count_answers(self.pipeline)
        return self._count

    def test(
        self, candidate: Sequence[Element], meter: Optional[CostMeter] = None
    ) -> bool:
        """Constant-time membership test (Theorem 2.6)."""
        return test_answer(self.pipeline, candidate, meter)

    def enumerate(
        self,
        meter: Optional[CostMeter] = None,
        skip_mode: Optional[str] = None,
        validate: bool = False,
    ) -> Iterator[Tuple[Element, ...]]:
        """Constant-delay enumeration (Theorem 2.7), no repetitions."""
        return enumerate_answers(
            self.pipeline,
            meter=meter,
            skip_mode=skip_mode or self.skip_mode,
            validate=validate,
        )

    def enumerate_parallel(
        self,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        skip_mode: Optional[str] = None,
    ) -> Iterator[Tuple[Element, ...]]:
        """Branch-parallel enumeration via :mod:`repro.engine`.

        Same answers in the same order as :meth:`enumerate`; branches run
        concurrently on a pool chosen by the cost-model heuristic (or
        forced with ``mode`` in ``{"serial", "thread", "process"}``).
        """
        from repro.engine.executor import parallel_enumerate

        return parallel_enumerate(
            self.pipeline,
            workers=workers,
            mode=mode,
            skip_mode=skip_mode or self.skip_mode,
        )

    def answers(self) -> List[Tuple[Element, ...]]:
        """Materialize the full answer set (enumeration, collected)."""
        return list(self.enumerate())

    # -- introspection ------------------------------------------------------

    @property
    def variables(self) -> Tuple[Var, ...]:
        """The free variables, in answer-tuple order."""
        return self.pipeline.variables

    @property
    def arity(self) -> int:
        return self.pipeline.arity

    def stats(self) -> dict:
        """Preprocessing statistics (graph size, branches, radii, ...)."""
        return self.pipeline.stats()

    def explain(self) -> str:
        """A human-readable account of the preprocessing."""
        return preprocessing_report(self.pipeline)


def prepare(
    structure: Structure,
    query: Union[Formula, str],
    order: Optional[Sequence[Union[Var, str]]] = None,
    eps: float = 0.5,
    budget: Optional[LocalizationBudget] = None,
    skip_mode: str = "lazy",
    _stacklevel: int = 2,
) -> PreparedQuery:
    """Preprocess ``query`` (a formula or query text) against ``structure``.

    .. deprecated:: Use ``repro.session.Database(structure).query(...)``.

    ``_stacklevel`` lets re-exporting wrappers (``repro.prepare``) point
    the deprecation warning at the *caller's* line, not their own.
    """
    warnings.warn(
        "prepare() is deprecated; use repro.session.Database — "
        "db.query(...) gives count/test/answers through one session",
        DeprecationWarning,
        stacklevel=_stacklevel,
    )
    return PreparedQuery(
        structure, query, order=order, eps=eps, budget=budget, skip_mode=skip_mode
    )
