"""Naive baselines the paper's algorithms are measured against.

Two strawmen, both from the paper:

* :func:`product_enumerate` — iterate all ``|A|^k`` tuples and test each
  (the generic baseline; delay between outputs grows with ``n``).
* :class:`ListJoinBaseline` — the "naive algorithm" of Example 2.3 for
  colored-pair queries: iterate candidate lists per variable and test the
  remaining quantifier-free condition per candidate tuple.  After linear
  preprocessing (the candidate lists and a fact index) each *attempt* is
  O(1), but false hits make the *delay* unbounded — exactly the failure
  mode the skip function removes.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.fo.semantics import evaluate, free_tuple
from repro.fo.syntax import And, Formula, Not, RelAtom, Var
from repro.storage.cost_model import CostMeter, tick
from repro.storage.fact_index import FactIndex
from repro.structures.structure import Structure

Element = Hashable


def product_enumerate(
    query: Formula,
    structure: Structure,
    order: Optional[Sequence[Var]] = None,
    meter: Optional[CostMeter] = None,
) -> Iterator[Tuple[Element, ...]]:
    """Enumerate ``q(A)`` by testing all ``|A|^k`` tuples."""
    variables = free_tuple(query, order)
    if not variables:
        tick(meter, "baseline.check")
        if evaluate(query, structure, {}):
            yield ()
        return
    assignment: Dict[Var, Element] = {}
    for values in product(structure.domain, repeat=len(variables)):
        tick(meter, "baseline.check")
        for var, value in zip(variables, values):
            assignment[var] = value
        if evaluate(query, structure, assignment):
            yield values


def product_count(
    query: Formula,
    structure: Structure,
    order: Optional[Sequence[Var]] = None,
) -> int:
    """Count by brute force (exponential in arity)."""
    return sum(1 for _ in product_enumerate(query, structure, order))


class ListJoinBaseline:
    """Example 2.3's naive algorithm, generalized.

    The query must be a conjunction of unary atoms and *negated* binary
    atoms over distinct variables (the paper's running shape
    ``B(x) and R(y) and not E(x, y)``).  Preprocessing builds one
    candidate list per variable (elements satisfying all its unary atoms)
    and a constant-time fact index; enumeration iterates the product of
    the candidate lists and tests the binary literals per tuple.
    """

    def __init__(
        self,
        query: Formula,
        structure: Structure,
        order: Optional[Sequence[Var]] = None,
        eps: float = 0.5,
    ):
        self.structure = structure
        self.variables = free_tuple(query, order)
        literals = (
            list(query.children) if isinstance(query, And) else [query]
        )
        self._unary: Dict[Var, List[str]] = {var: [] for var in self.variables}
        self._binary: List[Tuple[str, Var, Var, bool]] = []
        for literal in literals:
            positive = True
            if isinstance(literal, Not):
                positive = False
                literal = literal.child
            if not isinstance(literal, RelAtom):
                raise QueryError(
                    "ListJoinBaseline supports conjunctions of unary atoms "
                    f"and (negated) binary atoms; got {literal}"
                )
            if len(literal.args) == 1:
                if not positive:
                    raise QueryError(
                        "ListJoinBaseline does not support negated unary atoms"
                    )
                self._unary[literal.args[0]].append(literal.relation)
            elif len(literal.args) == 2:
                left, right = literal.args
                self._binary.append((literal.relation, left, right, positive))
            else:
                raise QueryError("atoms of arity > 2 are not supported")
        # Linear-time preprocessing: candidate lists + fact index.
        self.index = FactIndex(structure, eps=eps)
        self.lists: Dict[Var, List[Element]] = {}
        for var in self.variables:
            wanted = self._unary[var]
            self.lists[var] = [
                element
                for element in structure.domain
                if all(structure.has_fact(name, element) for name in wanted)
            ]

    def enumerate(
        self, meter: Optional[CostMeter] = None
    ) -> Iterator[Tuple[Element, ...]]:
        """Iterate candidate products; false hits inflate the delay."""
        candidate_lists = [self.lists[var] for var in self.variables]
        position = {var: i for i, var in enumerate(self.variables)}
        for values in product(*candidate_lists):
            tick(meter, "baseline.attempt")
            good = True
            for relation, left, right, positive in self._binary:
                holds = self.index.holds(
                    relation, (values[position[left]], values[position[right]])
                )
                if holds != positive:
                    good = False
                    break
            if good:
                yield values

    def count(self) -> int:
        return sum(1 for _ in self.enumerate())
