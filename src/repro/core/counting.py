"""Counting answers (Lemma 3.6, Proposition 3.7, Theorem 2.5).

Per branch ``(P, t)`` the task is: count tuples choosing one node per
block from the branch's lists such that no two chosen nodes are adjacent
in the colored graph.  Following Lemma 3.6 we eliminate the negated
adjacency constraints one at a time::

    |gamma and not E(i,j)|  =  |gamma|  -  |gamma and E(i,j)|

Each leaf of the recursion has only *positive* adjacency constraints; its
position graph splits into connected components, the count is the product
of per-component counts, and each component is counted by the brute-force
neighborhood walk of Lemma 3.2 (over the colored graph, whose degree is
``d^{h(|q|)}``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.colored_graph import ColoredGraph
from repro.core.pipeline import Branch, Pipeline
from repro.storage.cost_model import CostMeter, tick

Pair = Tuple[int, int]


def count_answers(pipeline: Pipeline, meter: Optional[CostMeter] = None) -> int:
    """``|q(A)|`` in pseudo-linear time (Theorem 2.5)."""
    if pipeline.trivial is not None:
        return trivial_count(pipeline)
    total = 0
    for branch_index in range(len(pipeline.branches)):
        total += count_branch_at(pipeline, branch_index, meter)
    return total


def trivial_count(pipeline: Pipeline) -> int:
    """The count when localization collapsed the query to a constant."""
    assert pipeline.trivial is not None
    if not pipeline.trivial:
        return 0
    return pipeline.structure.cardinality ** pipeline.arity


def count_branch_at(
    pipeline: Pipeline, branch_index: int, meter: Optional[CostMeter] = None
) -> int:
    """Count one branch of a pipeline, addressed by index.

    This is the engine's task-splitting hook (Theorem 2.5 makes ``|q(A)|``
    a sum of independent per-branch counts): the index is picklable, so a
    worker process can rebuild the pipeline from its spec and count just
    this branch.  It is also thread-safe — counting only *reads* the
    colored graph and the branch lists.
    """
    assert pipeline.graph is not None
    return count_branch(pipeline.graph, pipeline.branches[branch_index], meter)


def count_branch(
    graph: ColoredGraph, branch: Branch, meter: Optional[CostMeter] = None
) -> int:
    """Count pairwise-non-adjacent block assignments for one branch."""
    block_count = len(branch.lists)
    if block_count == 0:
        # A 0-ary branch: the empty tuple is its single answer.
        return 1
    negated: FrozenSet[Pair] = frozenset(
        (i, j) for i in range(block_count) for j in range(i + 1, block_count)
    )
    return _count(graph, branch.lists, negated, frozenset(), meter)


def _count(
    graph: ColoredGraph,
    lists: Sequence[Sequence[int]],
    negated: FrozenSet[Pair],
    positive: FrozenSet[Pair],
    meter: Optional[CostMeter],
) -> int:
    if negated:
        # Lemma 3.6 induction step: resolve one negated adjacency.
        pair = min(negated)
        remaining = negated - {pair}
        tick(meter, "count.split")
        without = _count(graph, lists, remaining, positive, meter)
        with_edge = _count(graph, lists, remaining, positive | {pair}, meter)
        return without - with_edge
    # Base case: only positive adjacency constraints; split into connected
    # components of the position graph.
    block_count = len(lists)
    component_of = list(range(block_count))

    def find(i: int) -> int:
        while component_of[i] != i:
            component_of[i] = component_of[component_of[i]]
            i = component_of[i]
        return i

    for i, j in positive:
        root_i, root_j = find(i), find(j)
        if root_i != root_j:
            component_of[root_j] = root_i
    components: Dict[int, List[int]] = {}
    for i in range(block_count):
        components.setdefault(find(i), []).append(i)
    product = 1
    for members in components.values():
        product *= _count_component(graph, lists, members, positive, meter)
        if product == 0:
            return 0
    return product


def _count_component(
    graph: ColoredGraph,
    lists: Sequence[Sequence[int]],
    members: List[int],
    positive: FrozenSet[Pair],
    meter: Optional[CostMeter],
) -> int:
    """Count assignments for one connected component (Lemma 3.2 on G).

    Singleton components cost ``O(1)`` (list length).  Larger components
    are enumerated by backtracking, extending along positive adjacency
    edges, so candidates always come from a neighbor list of an already
    assigned node — cost per start node bounded by the graph degree to the
    component size.
    """
    if len(members) == 1:
        tick(meter, "count.singleton")
        return len(lists[members[0]])
    member_set = set(members)
    edges: Dict[int, List[int]] = {member: [] for member in members}
    for i, j in positive:
        if i in member_set and j in member_set:
            edges[i].append(j)
            edges[j].append(i)
    # Order positions so each (after the first) touches an earlier one.
    order = [members[0]]
    placed = {members[0]}
    while len(order) < len(members):
        progressed = False
        for member in members:
            if member in placed:
                continue
            if any(other in placed for other in edges[member]):
                order.append(member)
                placed.add(member)
                progressed = True
        if not progressed:  # pragma: no cover - components are connected
            raise AssertionError("disconnected component in positive edges")
    first_list = lists[order[0]]
    list_sets = {member: set(lists[member]) for member in members}
    count = 0

    def extend(depth: int, assignment: Dict[int, int]) -> int:
        if depth == len(order):
            return 1
        position = order[depth]
        anchors = [other for other in edges[position] if other in assignment]
        candidate_pool = graph.neighbors(assignment[anchors[0]])
        found = 0
        for candidate in candidate_pool:
            tick(meter, "count.candidate")
            if candidate not in list_sets[position]:
                continue
            if any(
                candidate not in graph.neighbors(assignment[other])
                for other in anchors[1:]
            ):
                continue
            assignment[position] = candidate
            found += extend(depth + 1, assignment)
            del assignment[position]
        return found

    for start in first_list:
        tick(meter, "count.start")
        count += extend(1, {order[0]: start})
    return count
