"""Partitions of query positions (Section 4, Step 2).

A partition of ``{0, ..., k-1}`` is a tuple of blocks; each block is a
sorted tuple of positions, and blocks are ordered by their minimum — the
paper's canonical form (``min P_j < min P_{j+1}``).

For an answer tuple ``a-bar``, the *induced* partition groups positions
whose elements are within the linking radius ``2r + 1`` of each other
(transitively): this is the unique ``P`` with ``A |= rho_P(a-bar)``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Hashable, List, Sequence, Tuple

Element = Hashable
Block = Tuple[int, ...]
Partition = Tuple[Block, ...]


@lru_cache(maxsize=None)
def all_partitions(k: int) -> Tuple[Partition, ...]:
    """All partitions of ``range(k)`` in canonical form.

    There are Bell(k) of them (1, 1, 2, 5, 15, 52, ... for k = 0, 1, 2,
    3, 4, 5); the paper's bound ``|P| <= k!`` is looser.
    """
    if k == 0:
        return ((),)

    def extend(position: int, blocks: List[List[int]]):
        if position == k:
            yield tuple(tuple(block) for block in blocks)
            return
        for block in blocks:
            block.append(position)
            yield from extend(position + 1, blocks)
            block.pop()
        blocks.append([position])
        yield from extend(position + 1, blocks)
        blocks.pop()

    return tuple(extend(0, []))


def canonical(blocks: Sequence[Sequence[int]]) -> Partition:
    """Normalize blocks: sort positions within, order blocks by minimum."""
    normalized = [tuple(sorted(block)) for block in blocks]
    normalized.sort(key=lambda block: block[0])
    return tuple(normalized)


def partition_of_tuple(
    elements: Sequence[Element],
    linked: Callable[[Element, Element], bool],
) -> Partition:
    """The partition induced by the linking relation on a concrete tuple.

    Positions ``i`` and ``j`` land in the same block iff their elements are
    connected through chains of ``linked`` pairs (``linked`` is the test
    ``dist(a, b) <= 2r + 1``; it must be symmetric and reflexive).
    """
    k = len(elements)
    parent = list(range(k))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        root_i, root_j = find(i), find(j)
        if root_i != root_j:
            parent[root_j] = root_i

    for i in range(k):
        for j in range(i + 1, k):
            if elements[i] == elements[j] or linked(elements[i], elements[j]):
                union(i, j)
    groups: dict = {}
    for i in range(k):
        groups.setdefault(find(i), []).append(i)
    return canonical(list(groups.values()))


def block_subtuple(elements: Sequence[Element], block: Block) -> Tuple[Element, ...]:
    """The cluster tuple ``a-bar_Pj``: elements at the block's positions."""
    return tuple(elements[position] for position in block)


def assemble(
    k: int, partition: Partition, cluster_tuples: Sequence[Sequence[Element]]
) -> Tuple[Element, ...]:
    """Inverse of splitting: rebuild ``a-bar`` from per-block tuples."""
    result: List[Element] = [None] * k
    for block, cluster in zip(partition, cluster_tuples):
        for position, element in zip(block, cluster):
            result[position] = element
    return tuple(result)
