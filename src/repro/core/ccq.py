"""Connected conjunctive queries (Section 3.2: Lemma 3.2, Proposition 3.3).

A *conjunction* is a conjunction of relational atoms and negated unary
atoms; its query graph links variables co-occurring in a relational atom.
A *connected conjunctive query* is ``exists y-bar gamma(x-bar, y-bar)``
with ``gamma`` a connected conjunction over all the variables.

For such queries every answer lies inside the r-neighborhood of its first
component (r = number of variables), so ``q(A)`` is computed exactly as in
Lemma 3.2: for every element ``a``, brute-force the tuples of
``N_r(a)`` whose first component is ``a`` — total time
``O(|q| * n * d^{h(|q|)})``, pseudo-linear over a low-degree class.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.fo.semantics import free_tuple
from repro.fo.syntax import And, Exists, Formula, Not, RelAtom, Var
from repro.structures.neighborhoods import NeighborhoodIndex
from repro.structures.structure import Structure

Element = Hashable


def split_conjunction(formula: Formula) -> List[Formula]:
    """Flatten a conjunction into literals."""
    if isinstance(formula, And):
        return list(formula.children)
    return [formula]


def parse_ccq(query: Formula) -> Tuple[Tuple[Var, ...], Tuple[Var, ...], List[Formula]]:
    """Validate and destructure a connected conjunctive query.

    Returns ``(free_vars, existential_vars, literals)``; raises
    :class:`QueryError` when the query is not a connected conjunctive
    query (wrong literal shape or disconnected query graph).
    """
    existential: List[Var] = []
    body = query
    while isinstance(body, Exists):
        existential.append(body.var)
        body = body.child
    literals = split_conjunction(body)
    variables: Set[Var] = set()
    for literal in literals:
        inner = literal
        negated = False
        if isinstance(inner, Not):
            inner = inner.child
            negated = True
        if not isinstance(inner, RelAtom):
            raise QueryError(
                f"conjunctions contain relational atoms and negated unary "
                f"atoms; got {literal}"
            )
        if negated and len(inner.args) != 1:
            raise QueryError(
                f"only unary atoms may be negated in a conjunction; got {literal}"
            )
        variables |= set(inner.args)
    free_vars = tuple(sorted(variables - set(existential)))
    if set(query.free) != set(free_vars):
        raise QueryError("all variables must occur in the conjunction")
    # Connectivity of the query graph H_gamma.
    if variables:
        adjacency: Dict[Var, Set[Var]] = {var: set() for var in variables}
        for literal in literals:
            inner = literal.child if isinstance(literal, Not) else literal
            assert isinstance(inner, RelAtom)
            for left in inner.args:
                for right in inner.args:
                    if left != right:
                        adjacency[left].add(right)
        seen = {next(iter(variables))}
        frontier = list(seen)
        while frontier:
            var = frontier.pop()
            for other in adjacency[var]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        if seen != variables:
            raise QueryError("the query graph is not connected")
    return free_vars, tuple(existential), literals


def evaluate_ccq(
    query: Formula,
    structure: Structure,
    order: Optional[Sequence[Var]] = None,
) -> List[Tuple[Element, ...]]:
    """Compute ``q(A)`` for a connected conjunctive query (Lemma 3.2).

    Answers are sorted lexicographically with respect to the domain order.
    """
    free_vars, existential, literals = parse_ccq(query)
    if order is not None:
        free_vars = free_tuple(query, order)
    all_vars = list(free_vars) + list(existential)
    radius = max(1, len(all_vars))
    relation_names = {
        (lit.child if isinstance(lit, Not) else lit).relation  # type: ignore[union-attr]
        for lit in literals
    }
    index = NeighborhoodIndex(structure, radius, relation_names)
    answers: Set[Tuple[Element, ...]] = set()
    if not free_vars:
        raise QueryError("use model checking for boolean queries")

    def check(assignment: Dict[Var, Element]) -> bool:
        for literal in literals:
            inner = literal
            negated = False
            if isinstance(inner, Not):
                inner = inner.child
                negated = True
            assert isinstance(inner, RelAtom)
            holds = structure.has_fact(
                inner.relation, *(assignment[arg] for arg in inner.args)
            )
            if holds == negated:
                return False
        return True

    for anchor in structure.domain:
        ball = tuple(index.ball(anchor))
        # Free tuples with first component = anchor, then existential
        # witnesses, all within the r-ball of the anchor.
        for free_rest in iter_product(ball, repeat=len(free_vars) - 1):
            candidate = (anchor,) + free_rest
            if candidate in answers:
                continue
            assignment = dict(zip(free_vars, candidate))
            for witnesses in iter_product(ball, repeat=len(existential)):
                assignment.update(zip(existential, witnesses))
                if check(assignment):
                    answers.add(candidate)
                    break
    return structure.order.sorted_tuples(answers)


def count_ccq(
    query: Formula,
    structure: Structure,
    order: Optional[Sequence[Var]] = None,
) -> int:
    """``|q(A)|`` for a connected conjunctive query (Proposition 3.3)."""
    return len(evaluate_ccq(query, structure, order))
