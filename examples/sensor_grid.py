"""Monitoring queries on a sensor grid (a degree-4 low-degree class).

A rows x cols grid of sensors; some are Powered, some are Faulty.  Grid
graphs have Gaifman degree <= 4, a textbook bounded-degree (hence
low-degree) class.

Demonstrates:

* model checking sentences in pseudo-linear time (Theorem 2.4) — global
  health invariants;
* quantified unary queries through the full localization pipeline —
  finding sensors in trouble;
* distance atoms — redundancy pairs for hand-off planning.

Run:  python examples/sensor_grid.py [rows] [cols]
"""

import sys

from repro import parse, prepare
from repro.core.model_checking import model_check
from repro.structures import grid_graph


def build_grid(rows: int, cols: int):
    return grid_graph(rows, cols, colors=("Powered", "Faulty"), seed=7)


def global_invariants(db) -> None:
    print("--- global invariants (model checking, Theorem 2.4) ---")
    checks = {
        "some powered sensor exists": "exists x. Powered(x)",
        "every faulty sensor has a powered neighbor": (
            "forall x. Faulty(x) -> (exists z. (E(x,z) | E(z,x)) & Powered(z))"
        ),
        "two faulty sensors far apart (> 4 hops)": (
            "exists x. exists y. Faulty(x) & Faulty(y) & dist(x,y) > 4"
        ),
    }
    for description, sentence in checks.items():
        verdict = model_check(parse(sentence), db)
        print(f"  {description}: {verdict}")


def trouble_spots(db) -> None:
    print("\n--- sensors at risk (quantified query) ---")
    # Powered sensors all of whose neighbors are faulty.
    query = parse("Powered(x) & forall z. (E(x,z) -> Faulty(z))")
    prepared = prepare(db, query)
    print(f"  powered sensors surrounded by faults: {prepared.count()}")
    for (sensor,) in list(prepared.enumerate())[:5]:
        print(f"    at grid position {sensor}")


def redundancy_pairs(db) -> None:
    print("\n--- redundancy pairs (distance query) ---")
    # Powered pairs within 2 hops: close enough for hand-off.
    query = parse("Powered(x) & Powered(y) & x != y & dist(x,y) <= 2")
    prepared = prepare(db, query)
    print(f"  hand-off pairs within 2 hops: {prepared.count()}")

    # Faulty sensors with no powered sensor within 2 hops: dead zones.
    dead_zone = parse("Faulty(x) & forall z in N2(x). ~Powered(z)")
    prepared = prepare(db, dead_zone)
    print(f"  dead-zone sensors (no power within 2 hops): {prepared.count()}")


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    db = build_grid(rows, cols)
    print(
        f"sensor grid {rows}x{cols}: {db.cardinality} sensors, "
        f"Gaifman degree {db.degree}\n"
    )
    global_invariants(db)
    trouble_spots(db)
    redundancy_pairs(db)


if __name__ == "__main__":
    main()
