"""Quickstart: the paper's running example (Example 2.3) end to end.

Builds a small colored graph, opens a :class:`repro.Database` session,
and prepares the query

    B(x) & R(y) & ~E(x,y)      "blue-red pairs not linked by an edge"

exercising the three operations the paper proves efficient —
counting (Theorem 2.5), testing (Theorem 2.6), and constant-delay
enumeration (Theorem 2.7) — plus the session extras: the plan report
(``Query.explain``) and an in-place dynamic update.

Run:  python examples/quickstart.py
"""

from repro import Database, Signature, Structure


def build_database() -> Structure:
    """A hand-made colored graph: 8 nodes on a ring, alternating colors."""
    db = Structure(Signature.of(E=2, B=1, R=1), range(8))
    for u in range(8):
        v = (u + 1) % 8
        db.add_fact("E", u, v)
        db.add_fact("E", v, u)
    for u in range(0, 8, 2):
        db.add_fact("B", u)  # evens are blue
    for u in range(1, 8, 2):
        db.add_fact("R", u)  # odds are red
    return db


def main() -> None:
    structure = build_database()
    print(f"database: {structure}")
    print(f"Gaifman degree: {structure.degree}")

    # One session owns the pipeline cache, the shared graph templates,
    # and (should a plan go parallel) the worker pool.
    with Database(structure) as db:
        # Pseudo-linear preprocessing (Proposition 3.4) happens here.
        query = db.query("B(x) & R(y) & ~E(x,y)")
        print(f"\nquery: {query.formula}")

        print("\n--- chosen plan ---")
        print(query.explain().describe())

        # Theorem 2.5: count without enumerating.
        print(f"\n|q(A)| = {query.count()}")

        # Theorem 2.6: constant-time membership tests.
        print(f"test (0, 3): {query.test((0, 3))}   (far apart -> answer)")
        print(f"test (0, 1): {query.test((0, 1))}   (adjacent  -> not an answer)")

        # Theorem 2.7: constant-delay enumeration.
        print("\nanswers:")
        for blue, red in query.answers():
            print(f"  blue {blue} with red {red}")

        # Dynamic updates maintain eligible cached plans in place —
        # the same Query object reflects the new state.
        db.insert_fact("B", 1)  # node 1 becomes blue *and* red
        print(f"\nafter insert B(1): |q(A)| = {query.count()}")


if __name__ == "__main__":
    main()
