"""Quickstart: the paper's running example (Example 2.3) end to end.

Builds a small colored graph, prepares the query

    B(x) & R(y) & ~E(x,y)      "blue-red pairs not linked by an edge"

and exercises the three operations the paper proves efficient:
counting (Theorem 2.5), testing (Theorem 2.6), and constant-delay
enumeration (Theorem 2.7).

Run:  python examples/quickstart.py
"""

from repro import Signature, Structure, parse, prepare


def build_database() -> Structure:
    """A hand-made colored graph: 8 nodes on a ring, alternating colors."""
    db = Structure(Signature.of(E=2, B=1, R=1), range(8))
    for u in range(8):
        v = (u + 1) % 8
        db.add_fact("E", u, v)
        db.add_fact("E", v, u)
    for u in range(0, 8, 2):
        db.add_fact("B", u)  # evens are blue
    for u in range(1, 8, 2):
        db.add_fact("R", u)  # odds are red
    return db


def main() -> None:
    db = build_database()
    print(f"database: {db}")
    print(f"Gaifman degree: {db.degree}")

    query = parse("B(x) & R(y) & ~E(x,y)")
    print(f"\nquery: {query}")

    # Pseudo-linear preprocessing (Proposition 3.4).
    prepared = prepare(db, query)
    print("\n--- preprocessing report ---")
    print(prepared.explain())

    # Theorem 2.5: count without enumerating.
    print(f"\n|q(A)| = {prepared.count()}")

    # Theorem 2.6: constant-time membership tests.
    print(f"test (0, 3): {prepared.test((0, 3))}   (far apart -> answer)")
    print(f"test (0, 1): {prepared.test((0, 1))}   (adjacent  -> not an answer)")

    # Theorem 2.7: constant-delay enumeration.
    print("\nanswers:")
    for blue, red in prepared.enumerate():
        print(f"  blue {blue} with red {red}")


if __name__ == "__main__":
    main()
