"""Quickstart for the serve tier: a database over HTTP + WebSocket.

Starts an in-process server (``serve_in_thread`` — the same code path
as ``python -m repro serve``), then walks the whole client loop:

1. plain HTTP queries (rows, count, a compiled ``SELECT``);
2. an HTTP cursor paginating through the result;
3. a WebSocket streaming cursor that stays **pinned to its version**
   while a changeset commits mid-stream — the cursor finishes on the
   pre-commit answers, the next query sees the new facts;
4. the columnar wire: encoded chunks decoded client-side, with the
   server's transfer counters proving it never decoded a row itself.

Run:  python examples/serve_quickstart.py
"""

import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.serve import DatabaseRegistry, ServeClient, serve_in_thread
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

QUERY = "B(x) & R(y) & ~E(x,y)"


def main() -> None:
    db = Database(random_colored_graph(120, max_degree=4, seed=3).copy())
    registry = DatabaseRegistry()
    registry.add("main", db, close_on_shutdown=False)
    server = serve_in_thread(registry)  # port 0: the OS picks a free one
    print(f"serving {registry.names()} on 127.0.0.1:{server.port}")

    try:
        client = ServeClient("127.0.0.1", server.port)

        # 1. Plain HTTP queries.
        total = client.count("main", QUERY)
        print(f"count over HTTP: {total}")
        print(f"first rows:      {client.rows('main', QUERY, limit=3)}")
        top = client.query("main", f"SELECT y WHERE {QUERY} ORDER BY y LIMIT 3")
        print(f"SELECT over HTTP: columns={top['columns']} rows={top['rows']}")

        # 2. An HTTP cursor: pull-driven pagination.
        cursor = client.open_cursor("main", QUERY, page_size=500)
        pages = 0
        while not cursor.done:
            pages += len(cursor.next_page())
        print(f"HTTP cursor drained {pages} rows in pages of 500")

        # 3. A pinned WebSocket cursor riding across a commit.
        with client.stream("main") as ws:
            ack = ws.open(QUERY, page_size=200)
            print(f"cursor {ack['cursor']} pinned at version {ack['version']}")
            pages_iter = ws.pages()
            first = next(pages_iter)
            result = client.apply(
                "main",
                '{"op":"insert","relation":"B","elements":[1]}\n'
                '{"op":"insert","relation":"R","elements":[0]}\n',
            )
            print(
                f"committed v{result['version_after']} mid-stream "
                f"(forked={result['forked']})"
            )
            streamed = len(first) + sum(len(page) for page in pages_iter)
            print(f"pinned cursor finished on {streamed} pre-commit rows")
        print(f"head count now: {client.count('main', QUERY)}")

        # 4. The columnar wire: chunks decode client-side.
        with client.stream("main") as ws:
            ack = ws.open(QUERY, wire="columnar", chunk_rows=2048)
            rows = ws.rows(ack=ack)
            print(
                f"columnar wire: {len(rows)} rows decoded client-side "
                f"(arity {ack['arity']}, chunks of {ack['chunk_rows']})"
            )

        client.close()
    finally:
        server.stop()
        db.close()
        print("server drained and stopped")


if __name__ == "__main__":
    main()
