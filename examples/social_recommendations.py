"""Friend-recommendation queries on a synthetic social network.

The scenario the paper's introduction motivates: a large, *sparse*
database (every member knows a bounded number of people — a low-degree
class) on which we want to stream query answers without ever
materializing the quadratic result set.

Queries:

* ``candidates``  — active member x and newcomer y who are not friends:
  the recommendation stream (Example 2.3 at social-network scale).
* ``introducers`` — pairs connected through a common friend: a connected
  conjunctive query evaluated by the Lemma 3.2 fast path.
* ``isolated_newcomers`` — newcomers all of whose friends are inactive: a
  universally quantified query going through full localization.

Run:  python examples/social_recommendations.py [members]
"""

import sys
import time

from repro import parse, prepare
from repro.core.ccq import evaluate_ccq
from repro.storage.cost_model import CostMeter
from repro.structures import random_colored_graph


def build_network(members: int):
    """Members know <= 6 people; ~half are Active, ~half are Newcomers."""
    return random_colored_graph(
        members,
        max_degree=6,
        colors=("Active", "Newcomer"),
        color_probability=0.5,
        seed=2024,
    )


def recommendation_stream(db) -> None:
    query = parse("Active(x) & Newcomer(y) & x != y & ~E(x,y)")
    started = time.perf_counter()
    prepared = prepare(db, query)
    preprocessing = time.perf_counter() - started

    total = prepared.count()
    print(f"candidate pairs (not friends yet): {total:,}")
    print(f"preprocessing took {preprocessing:.3f}s — answers stream from here")

    meter = CostMeter()
    shown = 0
    for active, newcomer in prepared.enumerate(meter=meter):
        meter.mark()
        if shown < 5:
            print(f"  recommend member {newcomer} to member {active}")
        shown += 1
        if shown == 10_000:
            break
    deltas = meter.deltas()
    print(
        f"streamed {shown:,} recommendations; "
        f"RAM steps per answer: max {max(deltas)}, "
        f"mean {sum(deltas) / len(deltas):.1f}"
    )


def introducers(db) -> None:
    query = parse("exists z. E(x,z) & E(z,y) & Active(z)")
    # A connected conjunctive query: the Lemma 3.2 fast path applies.
    answers = evaluate_ccq(query, db)
    print(f"pairs reachable through an active common friend: {len(answers):,}")


def isolated_newcomers(db) -> None:
    query = parse("Newcomer(x) & forall z. (E(x,z) -> ~Active(z))")
    prepared = prepare(db, query)
    lonely = prepared.count()
    print(f"newcomers with no active friend: {lonely:,}")
    some = [x for (x,) in prepared.enumerate()][:5]
    if some:
        print(f"  e.g. members {some}")


def main() -> None:
    members = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    db = build_network(members)
    print(
        f"social network: {db.cardinality:,} members, "
        f"max acquaintance count {db.degree}\n"
    )
    recommendation_stream(db)
    print()
    introducers(db)
    print()
    isolated_newcomers(db)


if __name__ == "__main__":
    main()
