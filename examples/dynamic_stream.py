"""Maintaining query answers under a stream of updates.

The paper's conclusion asks whether the preprocessed data structure can
be maintained when tuples are inserted or deleted (answered for the
general case by Vigny, arXiv:2010.02982).  This example drives the
library's local-recomputation maintainer (`repro.core.dynamic`) with a
simulated edit stream on a social graph and compares, at each step,

* the maintained count (updated locally, cost ~ a query-radius ball) and
* a from-scratch recount on the mutated structure (the naive oracle),

demonstrating both correctness and the speedup over re-preprocessing.

Run:  python examples/dynamic_stream.py [members] [updates]
"""

import random
import sys
import time

from repro.core.dynamic import DynamicQuery
from repro.core.pipeline import Pipeline
from repro.fo.parser import parse
from repro.structures import random_colored_graph


def main() -> None:
    members = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    updates = int(sys.argv[2]) if len(sys.argv) > 2 else 30

    db = random_colored_graph(
        members, max_degree=5, colors=("Active", "Newcomer"), seed=99
    ).copy()
    query = parse("Active(x) & Newcomer(y) & x != y & ~E(x,y)")

    print(f"network: {db.cardinality:,} members, degree {db.degree}")
    started = time.perf_counter()
    dyn = DynamicQuery(db, query)
    print(f"initial preprocessing: {time.perf_counter() - started:.3f}s")
    print(f"initial candidate count: {dyn.count():,}\n")

    rng = random.Random(4)
    domain = list(db.domain)
    update_time = 0.0
    for step in range(updates):
        a, b = rng.choice(domain), rng.choice(domain)
        t0 = time.perf_counter()
        if db.has_fact("E", a, b):
            dyn.delete_fact("E", a, b)
            action = f"unfriend {a} ~ {b}"
        else:
            dyn.insert_fact("E", a, b)
            action = f"befriend {a} ~ {b}"
        update_time += time.perf_counter() - t0
        if step < 5 or step == updates - 1:
            print(f"  step {step:3d}: {action:24s} count -> {dyn.count():,}")
        elif step == 5:
            print("  ...")

    print(f"\n{updates} updates maintained in {update_time:.3f}s "
          f"({update_time / updates * 1e3:.1f} ms/update)")

    t0 = time.perf_counter()
    fresh = Pipeline(db, query)
    from repro.core.counting import count_answers

    fresh_count = count_answers(fresh)
    rebuild = time.perf_counter() - t0
    print(f"full re-preprocessing for comparison: {rebuild:.3f}s")
    maintained = dyn.count()
    print(f"maintained count {maintained:,} == fresh count {fresh_count:,}: "
          f"{maintained == fresh_count}")


if __name__ == "__main__":
    main()
