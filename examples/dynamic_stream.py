"""Maintaining query answers under a stream of updates.

The paper's conclusion asks whether the preprocessed data structure can
be maintained when tuples are inserted or deleted (answered for the
general case by Vigny, arXiv:2010.02982).  This example drives the
session API's dynamic maintenance — ``Database.insert_fact`` /
``Database.remove_fact`` locally recompute every eligible cached plan —
with a simulated edit stream on a social graph and compares, at each
step,

* the maintained count (updated locally, cost ~ a query-radius ball) and
* a from-scratch recount on the mutated structure (the naive oracle),

demonstrating both correctness and the speedup over re-preprocessing.

Run:  python examples/dynamic_stream.py [members] [updates]
"""

import random
import sys
import time

from repro import Database
from repro.structures import random_colored_graph


def main() -> None:
    members = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    updates = int(sys.argv[2]) if len(sys.argv) > 2 else 30

    structure = random_colored_graph(
        members, max_degree=5, colors=("Active", "Newcomer"), seed=99
    ).copy()
    query_text = "Active(x) & Newcomer(y) & x != y & ~E(x,y)"

    print(f"network: {structure.cardinality:,} members, degree {structure.degree}")
    with Database(structure) as db:
        started = time.perf_counter()
        query = db.query(query_text)
        print(f"initial preprocessing: {time.perf_counter() - started:.3f}s")
        print(f"initial candidate count: {query.count():,}")
        maintained = db.stats()["maintained_plans"]
        print(f"maintained plans in session cache: {maintained}\n")

        rng = random.Random(4)
        domain = list(structure.domain)
        update_time = 0.0
        for step in range(updates):
            a, b = rng.choice(domain), rng.choice(domain)
            t0 = time.perf_counter()
            if structure.has_fact("E", a, b):
                db.remove_fact("E", a, b)
                action = f"unfriend {a} ~ {b}"
            else:
                db.insert_fact("E", a, b)
                action = f"befriend {a} ~ {b}"
            update_time += time.perf_counter() - t0
            if step < 5 or step == updates - 1:
                # The same Query object stays live across updates.
                print(f"  step {step:3d}: {action:24s} count -> {query.count():,}")
            elif step == 5:
                print("  ...")

        print(f"\n{updates} updates maintained in {update_time:.3f}s "
              f"({update_time / updates * 1e3:.1f} ms/update)")

        t0 = time.perf_counter()
        with Database(structure) as fresh_session:
            fresh_count = fresh_session.query(query_text).count()
        rebuild = time.perf_counter() - t0
        print(f"full re-preprocessing for comparison: {rebuild:.3f}s")
        maintained_count = query.count()
        print(f"maintained count {maintained_count:,} == fresh count "
              f"{fresh_count:,}: {maintained_count == fresh_count}")


if __name__ == "__main__":
    main()
