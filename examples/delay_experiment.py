"""Measure the claim: constant delay vs the naive baseline's false hits.

This is Example 2.3 quantified.  The naive list-join algorithm iterates
blue x red candidate pairs and filters; between two *emitted* answers it
may burn through arbitrarily many false hits.  The paper's skip-based
enumerator jumps over blocked candidates in O(1).

The script runs both on the *positive* query ``B(x) & R(y) & E(x,y)``
(answers are scarce: Theta(n d) out of Theta(n^2) candidates) and prints
the per-answer attempt/step distributions side by side.

Run:  python examples/delay_experiment.py [n]
"""

import sys
import time

from repro import parse, prepare
from repro.core.baselines import ListJoinBaseline
from repro.storage.cost_model import CostMeter
from repro.structures import random_colored_graph


def run_pipeline(db, query):
    prepared = prepare(db, query)
    meter = CostMeter()
    started = time.perf_counter()
    answers = 0
    for _ in prepared.enumerate(meter=meter):
        meter.mark()
        answers += 1
    elapsed = time.perf_counter() - started
    deltas = meter.deltas() or [0]
    return {
        "name": "skip-based enumeration (Thm 2.7)",
        "answers": answers,
        "elapsed": elapsed,
        "max_delay_steps": max(deltas),
        "mean_delay_steps": sum(deltas) / len(deltas),
    }


def run_baseline(db, query):
    baseline = ListJoinBaseline(query, db)
    meter = CostMeter()
    started = time.perf_counter()
    answers = 0
    attempts_at_last_answer = 0
    worst_gap = 0
    for _ in baseline.enumerate(meter=meter):
        attempts = meter.by_label["baseline.attempt"]
        worst_gap = max(worst_gap, attempts - attempts_at_last_answer)
        attempts_at_last_answer = attempts
        answers += 1
    elapsed = time.perf_counter() - started
    total_attempts = meter.by_label.get("baseline.attempt", 0)
    return {
        "name": "list-join baseline (Example 2.3)",
        "answers": answers,
        "elapsed": elapsed,
        "max_delay_steps": worst_gap,
        "mean_delay_steps": total_attempts / max(1, answers),
    }


def report(result) -> None:
    print(f"  {result['name']}")
    print(f"    answers emitted : {result['answers']:,}")
    print(f"    wall time       : {result['elapsed']:.3f}s")
    print(f"    worst gap       : {result['max_delay_steps']:,} steps/attempts")
    print(f"    mean gap        : {result['mean_delay_steps']:.1f}")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    db = random_colored_graph(n, max_degree=4, seed=31)
    query = parse("B(x) & R(y) & E(x,y)")
    print(
        f"n = {db.cardinality:,}, degree = {db.degree}, "
        f"query = {query}\n"
    )
    ours = run_pipeline(db, query)
    naive = run_baseline(db, query)
    report(ours)
    print()
    report(naive)
    print(
        "\nThe baseline's worst gap grows with n (false hits); the skip"
        "\nenumerator's per-answer step count is a small constant."
    )


if __name__ == "__main__":
    main()
