"""E7 — ablation: lazy-memoized skip vs the paper's strict precompute.

The paper precomputes ``skip(y, V)`` for *all* admissible ``(y, V)`` — the
``d-hat^(3k^2)`` constant its conclusion flags as enormous.  The default
implementation computes skip cells on first use (deviation #2 in
DESIGN.md).  This ablation quantifies the trade:

* strict mode pays a much larger preprocessing bill (group
  "E7-skip-preprocessing"),
* both modes enumerate identically afterwards (group
  "E7-skip-enumeration"), with strict mode's delay worst case marginally
  tighter (all cells hit).
"""

import pytest

from repro.core.enumeration import BranchEnumerator, enumerate_answers
from repro.core.pipeline import Pipeline

from workloads import EXAMPLE_23, colored_graph, consume, query

N = 512
DEGREE = 3
MODES = ["lazy", "precompute"]


def _fresh_pipeline():
    db = colored_graph(N, DEGREE)
    return Pipeline(db, query(EXAMPLE_23))


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.benchmark(group="E7-skip-preprocessing")
def bench_skip_preprocessing(benchmark, mode):
    """Cost of arming the skip machinery for every branch."""
    pipeline = _fresh_pipeline()

    def arm():
        cells = 0
        for branch in pipeline.branches:
            enumerator = BranchEnumerator(pipeline, branch, skip_mode=mode)
            cells += enumerator.skip_cells
        return cells

    cells = benchmark.pedantic(arm, rounds=2, iterations=1)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["skip_cells"] = cells
    if mode == "precompute":
        assert cells > 0


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.benchmark(group="E7-skip-enumeration")
def bench_skip_enumeration(benchmark, mode):
    pipeline = _fresh_pipeline()

    produced = benchmark.pedantic(
        lambda: consume(enumerate_answers(pipeline, skip_mode=mode), 20_000),
        rounds=3,
        iterations=1,
    )
    assert produced == 20_000
    benchmark.extra_info["mode"] = mode


def bench_skip_modes_agree():
    """Sanity (not timed): both modes produce the identical stream."""
    pipeline = _fresh_pipeline()
    lazy = list(enumerate_answers(pipeline, skip_mode="lazy"))
    strict = list(enumerate_answers(pipeline, skip_mode="precompute"))
    assert lazy == strict
