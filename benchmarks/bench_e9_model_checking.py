"""E9 — model checking sentences in pseudo-linear time (Theorem 2.4).

Claim: deciding ``A |= q`` for an FO sentence over a low-degree class
costs ``~ n^{1+eps}``; the structure-assisted localization evaluates the
quantifier tower bottom-up with one neighborhood-bounded pass per level.

Shape to read off group "E9-model-checking": time roughly doubles when
``n`` doubles, for both the far-pair sentence (scattered witnesses) and
the guarded sentence.
"""

import pytest

from repro.core.model_checking import model_check

from workloads import SENTENCE_FAR_PAIR, SENTENCE_GUARDED, colored_graph, query

SIZES = [512, 1024, 2048, 4096]
DEGREE = 3


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E9-model-checking-far-pair")
def bench_far_pair_sentence(benchmark, n):
    db = colored_graph(n, DEGREE)
    sentence = query(SENTENCE_FAR_PAIR)

    verdict = benchmark.pedantic(
        lambda: model_check(sentence, db), rounds=2, iterations=1
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["verdict"] = verdict


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E9-model-checking-guarded")
def bench_guarded_sentence(benchmark, n):
    db = colored_graph(n, DEGREE)
    sentence = query(SENTENCE_GUARDED)

    verdict = benchmark.pedantic(
        lambda: model_check(sentence, db), rounds=2, iterations=1
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["verdict"] = verdict
