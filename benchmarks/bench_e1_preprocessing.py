"""E1 — preprocessing is pseudo-linear (Theorem 2.7's preprocessing phase).

Claim: preprocessing time on a bounded-degree class grows like
``n^{1+eps}``; across a geometric sweep of ``n`` the fitted log-log
exponent should stay close to 1 (and well below 2).

Read the shape off the pytest-benchmark group "E1-preprocessing": the mean
time should roughly double when ``n`` doubles.
"""

import pytest

from repro.core.pipeline import Pipeline

from workloads import EXAMPLE_23, QUANTIFIED_QUERY, colored_graph, query

SIZES = [512, 1024, 2048, 4096]
DEGREE = 4


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E1-preprocessing-example23")
def bench_preprocessing_example23(benchmark, n):
    db = colored_graph(n, DEGREE)
    formula = query(EXAMPLE_23)

    result = benchmark.pedantic(
        lambda: Pipeline(db, formula), rounds=3, iterations=1
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["graph_nodes"] = result.stats()["graph_nodes"]


@pytest.mark.parametrize("n", [256, 512, 1024])
@pytest.mark.benchmark(group="E1-preprocessing-quantified")
def bench_preprocessing_quantified(benchmark, n):
    """Preprocessing for a rank-1 query (localization + larger radius)."""
    db = colored_graph(n, 3)
    formula = query(QUANTIFIED_QUERY)

    result = benchmark.pedantic(
        lambda: Pipeline(db, formula), rounds=3, iterations=1
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["derived"] = result.stats()["derived_predicates"]
