"""E14 — the serve tier: query throughput and wire fidelity over HTTP.

Claim: the asyncio service tier (``repro.serve``) adds a transport, not
a semantics: every result that crosses the wire — JSON pages over HTTP,
row events over WebSocket, encoded columnar chunks decoded client-side —
is byte-identical to in-process enumeration, snapshot-pinned cursors
keep streaming their version while writers commit, and the pins drain
when the cursors do.

Two entry points:

* a standalone harness (``python benchmarks/bench_e14_serve.py``) that
  drives 1/8/32 concurrent clients against an in-process server and
  reports queries/sec with p50/p99 latency per concurrency level;
* ``--smoke`` (the CI gate) runs a tiny workload and enforces the
  equality contracts only:

  1. HTTP query results == in-process ``Answers.all()``;
  2. WebSocket row streaming == in-process enumeration;
  3. WebSocket *columnar* streaming decodes client-side to the same
     rows while the server decodes zero enumeration rows itself;
  4. an apply through the wire bumps the version and is visible to the
     next query;
  5. every cursor pin drains once the cursors close.

Both modes emit ``BENCH_serve.json`` so future PRs can track the
latency trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import threading
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # allow `python benchmarks/bench_e14_serve.py`
    sys.path.insert(0, REPO_SRC)

from repro.serve import (  # noqa: E402
    DatabaseRegistry,
    ServeClient,
    serve_in_thread,
)
from repro.session import Database  # noqa: E402
from repro.structures.random_gen import random_colored_graph  # noqa: E402

EXAMPLE = "B(x) & R(y) & ~E(x,y)"
DEFAULT_JSON = "BENCH_serve.json"


def build_database(n: int, seed: int = 17) -> Database:
    return Database(random_colored_graph(n, max_degree=4, seed=seed).copy())


def wait_for_pins(db, want: int = 0, timeout: float = 10.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pinned = db.stats()["pinned_versions"]
        if pinned == want:
            return pinned
        time.sleep(0.01)
    return db.stats()["pinned_versions"]


def check_wire_fidelity(db, port) -> list:
    """The smoke gates; returns a list of failure strings."""
    failures = []
    expected = db.query(EXAMPLE).answers().all()
    client = ServeClient("127.0.0.1", port)

    # Gate 1: HTTP rows and count match in-process enumeration.
    if client.rows("main", EXAMPLE) != expected:
        failures.append("HTTP rows diverge from in-process enumeration")
    if client.count("main", EXAMPLE) != len(expected):
        failures.append("HTTP count diverges from in-process count")

    # Gate 2: WebSocket row streaming matches.
    with client.stream("main") as ws:
        ws.open(EXAMPLE, page_size=64)
        if ws.rows() != expected:
            failures.append("WebSocket rows diverge from enumeration")

    # Gate 3: columnar chunks decode client-side to the same rows.
    with client.stream("main") as ws:
        ack = ws.open(EXAMPLE, wire="columnar", chunk_rows=512)
        if ack.get("wire") != "columnar":
            failures.append(f"columnar negotiation failed: {ack}")
        elif ws.rows(ack=ack) != expected:
            failures.append("columnar decode diverges from enumeration")

    # Gate 4: a wire apply bumps the version and is immediately visible.
    version = db.version
    result = client.apply(
        "main",
        '{"op":"insert","relation":"B","elements":[0]}\n'
        '{"op":"insert","relation":"R","elements":[1]}\n',
    )
    if result["ops_effective"] > 0 and result["version_after"] <= version:
        failures.append("apply did not advance the version")
    if client.count("main", EXAMPLE) != db.query(EXAMPLE).count():
        failures.append("post-apply HTTP count diverges from head")

    # Gate 5: no pins survive once every cursor is closed.
    client.close()
    leftover = wait_for_pins(db, 0)
    if leftover != 0:
        failures.append(f"{leftover} version pins leaked after close")
    return failures


def drive_clients(port, clients: int, requests_per_client: int, limit: int):
    """Each thread owns one connection and hammers the query endpoint."""
    latencies: list = []
    errors: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker():
        client = ServeClient("127.0.0.1", port)
        local = []
        try:
            client.health()  # connect before the clock starts
            barrier.wait()
            for _ in range(requests_per_client):
                started = time.perf_counter()
                client.rows("main", EXAMPLE, limit=limit)
                local.append(time.perf_counter() - started)
        except Exception as error:  # noqa: BLE001 - harness accounting
            with lock:
                errors.append(f"{type(error).__name__}: {error}")
        finally:
            client.close()
            with lock:
                latencies.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return latencies, elapsed, errors


def percentile(values, fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


def run_harness(
    n: int,
    client_counts,
    requests_per_client: int,
    limit: int,
    smoke: bool,
    json_path: str,
) -> int:
    db = build_database(n)
    registry = DatabaseRegistry()
    registry.add("main", db, close_on_shutdown=False)
    handle = serve_in_thread(registry, cursor_timeout=None)
    report = {
        "n": db.structure.cardinality,
        "smoke": smoke,
        "query": EXAMPLE,
        "levels": [],
    }
    failures = []
    try:
        print(
            f"workload: n={db.structure.cardinality}, "
            f"degree={db.structure.degree}, port={handle.port}"
        )
        failures.extend(check_wire_fidelity(db, handle.port))

        if not smoke:
            for clients in client_counts:
                latencies, elapsed, errors = drive_clients(
                    handle.port, clients, requests_per_client, limit
                )
                failures.extend(errors)
                total = len(latencies)
                qps = total / elapsed if elapsed > 0 else 0.0
                p50 = percentile(latencies, 0.50)
                p99 = percentile(latencies, 0.99)
                mean = statistics.fmean(latencies) if latencies else 0.0
                print(
                    f"{clients:>3} clients: {total:>5} requests in "
                    f"{elapsed:.3f}s  {qps:,.0f} q/s  "
                    f"mean {mean * 1e3:.2f}ms  p50 {p50 * 1e3:.2f}ms  "
                    f"p99 {p99 * 1e3:.2f}ms"
                )
                report["levels"].append(
                    {
                        "clients": clients,
                        "requests": total,
                        "seconds": elapsed,
                        "queries_per_second": qps,
                        "mean_ms": mean * 1e3,
                        "p50_ms": p50 * 1e3,
                        "p99_ms": p99 * 1e3,
                    }
                )
    finally:
        handle.stop()
        db.close()

    report["failures"] = failures
    with open(json_path, "w", encoding="utf-8") as out:
        json.dump(report, out, indent=2)
    print(f"report written to {json_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: HTTP, WebSocket, and columnar wires are byte-identical to "
        "in-process enumeration and every cursor pin drained"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload; enforce the wire-fidelity gates only",
    )
    parser.add_argument("-n", type=int, default=None, help="structure size")
    parser.add_argument(
        "--requests", type=int, default=40, help="requests per client"
    )
    parser.add_argument(
        "--limit", type=int, default=256, help="row limit per request"
    )
    parser.add_argument("--json", default=DEFAULT_JSON, help="report path")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (64 if args.smoke else 300)
    client_counts = () if args.smoke else (1, 8, 32)
    return run_harness(
        n, client_counts, args.requests, args.limit, args.smoke, args.json
    )


if __name__ == "__main__":
    sys.exit(main())
