"""E4 — answer testing is constant time (Theorem 2.6).

Claim: after preprocessing, one membership test costs O(1), independent
of ``n`` and of which tuple is probed.

Shape to read off group "E4-testing": per-test time flat across an 8x
sweep of ``n``; the probe mix is 50% answers / 50% non-answers.
"""

import random

import pytest

from repro.core.pipeline import Pipeline
from repro.core.testing import test_answer

from workloads import EXAMPLE_23, QUANTIFIED_QUERY, colored_graph, query

SIZES = [512, 1024, 2048, 4096]
DEGREE = 4


def _probe_mix(pipeline, db, count=200, seed=99):
    """Half answers (blue-red non-edges), half rejects."""
    rng = random.Random(seed)
    domain = list(db.domain)
    probes = []
    while len(probes) < count:
        left = rng.choice(domain)
        right = rng.choice(domain)
        probes.append((left, right))
    return probes


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E4-testing")
def bench_testing(benchmark, n):
    db = colored_graph(n, DEGREE)
    pipeline = Pipeline(db, query(EXAMPLE_23))
    probes = _probe_mix(pipeline, db)

    def run():
        hits = 0
        for probe in probes:
            if test_answer(pipeline, probe):
                hits += 1
        return hits

    hits = benchmark(run)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["positive_fraction"] = hits / len(probes)


@pytest.mark.parametrize("n", [256, 512, 1024])
@pytest.mark.benchmark(group="E4-testing-quantified")
def bench_testing_quantified(benchmark, n):
    db = colored_graph(n, 3)
    pipeline = Pipeline(db, query(QUANTIFIED_QUERY))
    domain = list(db.domain)
    probes = [(element,) for element in domain[:200]]

    benchmark(lambda: sum(1 for probe in probes if test_answer(pipeline, probe)))
    benchmark.extra_info["n"] = n
