"""E6 — behaviour across degree schedules (the low-degree frontier).

Claim (Section 2.3): the guarantees hold for any class where
``d <= n^delta`` eventually — bounded degree, ``log n`` degree — and the
constants degrade as the degree grows (the bounds carry ``d^{h(|q|)}``
factors).

Shape to read off group "E6-degree-sweep": at fixed ``n``, preprocessing
grows with ``d``; the log-degree class sits between ``d = 4`` and the
``n^0.5`` regime, which is visibly the most expensive.
"""

import math

import pytest

from repro.core.counting import count_answers
from repro.core.pipeline import Pipeline

from workloads import EXAMPLE_23, colored_graph, query

N = 1024
DEGREES = {
    "d=2": 2,
    "d=4": 4,
    "d=8": 8,
    "d=log-n": max(2, int(math.log2(N))),
    "d=n^0.4": max(2, int(N ** 0.4)),
}


@pytest.mark.parametrize("label", list(DEGREES))
@pytest.mark.benchmark(group="E6-degree-sweep-preprocessing")
def bench_preprocess_by_degree(benchmark, label):
    db = colored_graph(N, DEGREES[label])
    formula = query(EXAMPLE_23)

    pipeline = benchmark.pedantic(
        lambda: Pipeline(db, formula), rounds=2, iterations=1
    )
    benchmark.extra_info["degree"] = DEGREES[label]
    benchmark.extra_info["graph_nodes"] = pipeline.stats()["graph_nodes"]


@pytest.mark.parametrize("label", list(DEGREES))
@pytest.mark.benchmark(group="E6-degree-sweep-counting")
def bench_count_by_degree(benchmark, label):
    db = colored_graph(N, DEGREES[label])
    pipeline = Pipeline(db, query(EXAMPLE_23))

    count = benchmark.pedantic(
        lambda: count_answers(pipeline), rounds=2, iterations=1
    )
    benchmark.extra_info["degree"] = DEGREES[label]
    benchmark.extra_info["count"] = count
