"""E10 — dynamic updates: local recomputation vs full re-preprocessing.

The paper's conclusion asks for exactly this; [Vig20] achieves
``O(n^eps)`` updates.  Claim for this implementation: one fact update
costs work proportional to a query-radius ball (degree-dependent,
``n``-independent up to list splicing), so it beats re-running the
pseudo-linear preprocessing by a factor that grows with ``n``.

Shape to read off the groups: "E10-update" stays flat as ``n`` grows 4x
while "E10-rebuild" doubles.
"""

import random

import pytest

from repro.core.dynamic import DynamicQuery
from repro.core.pipeline import Pipeline

from workloads import EXAMPLE_23, colored_graph, query

SIZES = [512, 1024, 2048]
DEGREE = 4
UPDATES_PER_ROUND = 50


def _update_stream(db, count, seed=3):
    rng = random.Random(seed)
    domain = list(db.domain)
    stream = []
    for _ in range(count):
        stream.append((rng.choice(domain), rng.choice(domain)))
    return stream


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E10-update")
def bench_dynamic_updates(benchmark, n):
    db = colored_graph(n, DEGREE).copy()
    dyn = DynamicQuery(db, query(EXAMPLE_23))
    stream = _update_stream(db, UPDATES_PER_ROUND)

    flip = [True]

    def apply_updates():
        for a, b in stream:
            if flip[0]:
                dyn.insert_fact("E", a, b)
            else:
                dyn.delete_fact("E", a, b)
        flip[0] = not flip[0]
        return dyn.updates_applied

    benchmark.pedantic(apply_updates, rounds=4, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["updates_per_round"] = UPDATES_PER_ROUND


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E10-rebuild")
def bench_full_rebuild(benchmark, n):
    """The from-scratch alternative: re-run preprocessing per batch."""
    db = colored_graph(n, DEGREE).copy()
    stream = _update_stream(db, UPDATES_PER_ROUND)
    formula = query(EXAMPLE_23)

    def rebuild():
        for a, b in stream[:5]:  # even 5 rebuilds dwarf 50 local updates
            if db.has_fact("E", a, b):
                db.remove_fact("E", a, b)
            else:
                db.add_fact("E", a, b)
            Pipeline(db, formula)

    benchmark.pedantic(rebuild, rounds=2, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["rebuilds_per_round"] = 5
