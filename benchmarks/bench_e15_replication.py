"""E15 — WAL-shipped replication: convergence, lag honesty, warm replay.

Claim: a follower tailing a leader's write-ahead log — over a shared
directory or through the serve tier — converges to the leader's exact
fingerprint, reports its staleness truthfully while behind, replays
through the maintained-commit path (so a repeated follower query is a
cache hit, not a rebuild), and converges again after every crash point
and wire fault the harness can throw at the link.

Two entry points:

* a standalone harness (``python benchmarks/bench_e15_replication.py``)
  that measures replay throughput (records/sec), catch-up latency, and
  commit-to-visible freshness under background tailing;
* ``--smoke`` (the CI chaos gate) runs a tiny workload and enforces the
  replication contracts only:

  1. directory and serve followers converge to the leader fingerprint;
  2. a clipped batch shows positive lag, a full catch-up drains it to 0;
  3. the first repeated query after a warm catch-up is a cache *hit*;
  4. for every named crash point: crash → restart → converge;
  5. wire faults (cut connections, truncated responses) surface as the
     retry taxonomy and the follower converges once the link heals.

Both modes emit ``BENCH_replication.json`` for trend tracking.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.errors import ServeConnectionError  # noqa: E402
from repro.replication import (  # noqa: E402
    CRASH_POINTS,
    DirectorySource,
    FlakyProxy,
    FollowerDatabase,
    ServeSource,
    inject,
)
from repro.serve import (  # noqa: E402
    DatabaseRegistry,
    ServeClient,
    serve_in_thread,
)
from repro.session import Database  # noqa: E402
from repro.structures.random_gen import random_colored_graph  # noqa: E402
from repro.util.retry import RetryPolicy  # noqa: E402

EXAMPLE = "B(x) & ~R(x)"
DEFAULT_JSON = "BENCH_replication.json"
FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05, jitter=0)


def build_leader(path, n: int, seed: int = 17) -> Database:
    structure = random_colored_graph(n, max_degree=4, seed=seed)
    return Database.open(path, structure=structure, sync=False)


def flip(db: Database, element: int) -> None:
    """One guaranteed-effective commit: toggle ``element``'s R color."""
    if db.structure.has_fact("R", element):
        db.apply([("delete", "R", (element,))])
    else:
        db.apply([("insert", "R", (element,))])


def percentile(values, fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


# -- smoke gates --------------------------------------------------------


def gate_convergence(base, n: int) -> list:
    """Gate 1: both topologies land on the leader's fingerprint."""
    failures = []
    leader = build_leader(base / "g1", n)
    try:
        for element in range(8):
            flip(leader, element)
        with FollowerDatabase(DirectorySource(leader.path)) as follower:
            follower.catch_up()
            if follower.structure_fingerprint != leader.structure_fingerprint:
                failures.append("directory follower diverged from the leader")
            if follower.version != leader.version:
                failures.append("directory follower stopped short of head")

        registry = DatabaseRegistry()
        registry.add("lead", leader, close_on_shutdown=False)
        with serve_in_thread(registry) as server:
            source = ServeSource(ServeClient("127.0.0.1", server.port), "lead")
            with FollowerDatabase(source) as follower:
                follower.catch_up()
                flip(leader, 9)
                follower.catch_up()
                if (
                    follower.structure_fingerprint
                    != leader.structure_fingerprint
                ):
                    failures.append("serve follower diverged from the leader")
    finally:
        leader.close()
    return failures


def gate_lag_accounting(base, n: int) -> list:
    """Gate 2: clipped catch-up shows real lag; full catch-up drains it."""
    failures = []
    leader = build_leader(base / "g2", n)
    try:
        registry = DatabaseRegistry()
        registry.add("lead", leader, close_on_shutdown=False)
        with serve_in_thread(registry) as server:
            source = ServeSource(ServeClient("127.0.0.1", server.port), "lead")
            with FollowerDatabase(source, batch_limit=1) as follower:
                follower.catch_up()
                for element in range(4):
                    flip(leader, element)
                follower.catch_up(max_batches=1)
                if follower.lag != 3:
                    failures.append(
                        f"after 1 of 4 records, lag reads {follower.lag} "
                        "(want 3)"
                    )
                plan = follower.query(EXAMPLE).explain()
                if getattr(plan, "role", None) != "follower":
                    failures.append("explain() does not stamp the role")
                if getattr(plan, "lag", None) != 3:
                    failures.append("explain() does not carry the lag")
                follower.catch_up()
                if follower.lag != 0:
                    failures.append(
                        f"lag did not drain to 0 (reads {follower.lag})"
                    )
    finally:
        leader.close()
    return failures


def gate_warm_replay(base, n: int) -> list:
    """Gate 3: the first query after a warm catch-up is a cache hit."""
    failures = []
    leader = build_leader(base / "g3", n)
    try:
        with FollowerDatabase(DirectorySource(leader.path)) as follower:
            follower.catch_up()
            follower.count(EXAMPLE)  # warm the plan (a miss)
            misses = follower.stats()["misses"]
            hits = follower.stats()["hits"]
            flip(leader, 0)
            follower.catch_up()
            count = follower.count(EXAMPLE)
            stats = follower.stats()
            if stats["misses"] != misses:
                failures.append(
                    "post-catch-up query rebuilt its pipeline "
                    f"(misses {misses} -> {stats['misses']})"
                )
            if stats["hits"] <= hits:
                failures.append("post-catch-up query was not a cache hit")
            if count != leader.query(EXAMPLE).count():
                failures.append("maintained follower count diverged")
    finally:
        leader.close()
    return failures


def gate_crash_matrix(base, n: int) -> list:
    """Gate 4: crash at every named point, restart, converge."""
    from repro.replication import InjectedCrash

    failures = []
    for point in CRASH_POINTS:
        path = base / f"g4-{point.replace('.', '-')}"
        leader = build_leader(path, n)
        stale = []
        follower = FollowerDatabase(DirectorySource(leader.path))
        try:
            follower.catch_up()
            with inject({point: 1}):
                try:
                    flip(leader, 0)
                    flip(leader, 1)
                    leader.checkpoint()
                    flip(leader, 2)
                    follower.catch_up()
                except Exception:  # noqa: BLE001 - the simulated death
                    pass
            if not point.startswith("follower.") and point != "ship.batch":
                stale.append(leader)
                leader = Database.open(path, sync=False)
            flip(leader, 3)
            follower.catch_up()
            if follower.structure_fingerprint != leader.structure_fingerprint:
                failures.append(f"no convergence after crash at {point!r}")
        finally:
            follower.close()
            leader.close()
            for db in stale:
                db.close()
    return failures


def gate_wire_faults(base, n: int) -> list:
    """Gate 5: cut wires surface as the taxonomy; healing converges."""
    failures = []
    leader = build_leader(base / "g5", n)
    try:
        registry = DatabaseRegistry()
        registry.add("lead", leader, close_on_shutdown=False)
        with serve_in_thread(registry) as server:
            with FlakyProxy("127.0.0.1", server.port) as proxy:
                client = ServeClient(
                    "127.0.0.1", proxy.port, timeout=5.0, retry=FAST_RETRY
                )
                with FollowerDatabase(
                    ServeSource(client, "lead"), retry=FAST_RETRY
                ) as follower:
                    follower.catch_up()
                    for element in range(4):
                        flip(leader, element)
                    proxy.drop_after_bytes = 40
                    proxy.kill_connections()
                    try:
                        follower.catch_up()
                        failures.append(
                            "a 40-byte wire budget did not surface an error"
                        )
                    except ServeConnectionError:
                        pass  # the taxonomy, after retries
                    except Exception as error:  # noqa: BLE001
                        failures.append(
                            f"wire fault leaked {type(error).__name__} "
                            "instead of ServeConnectionError"
                        )
                    proxy.drop_after_bytes = None  # heal
                    follower.catch_up()
                    if (
                        follower.structure_fingerprint
                        != leader.structure_fingerprint
                    ):
                        failures.append("no convergence after the wire healed")
                    if proxy.dropped < 1:
                        failures.append("the proxy never dropped a connection")
    finally:
        leader.close()
    return failures


# -- the measuring harness ---------------------------------------------


def measure_replay_throughput(base, n: int, commits: int) -> dict:
    """Replay ``commits`` shipped records through a cold follower."""
    leader = build_leader(base / "replay", n)
    try:
        with FollowerDatabase(DirectorySource(leader.path)) as follower:
            follower.catch_up()
            for index in range(commits):
                flip(leader, index % n)
            started = time.perf_counter()
            applied = follower.catch_up()
            elapsed = time.perf_counter() - started
            assert applied == commits
        return {
            "commits": commits,
            "seconds": elapsed,
            "records_per_second": commits / elapsed if elapsed > 0 else 0.0,
        }
    finally:
        leader.close()


def measure_freshness(base, n: int, commits: int) -> dict:
    """Commit-to-visible latency with a background tailer running."""
    leader = build_leader(base / "fresh", n)
    latencies = []
    try:
        with FollowerDatabase(DirectorySource(leader.path)) as follower:
            follower.catch_up()
            follower.start_tailing(interval=0.005)
            for index in range(commits):
                flip(leader, index % n)
                target = leader.version
                started = time.perf_counter()
                while follower.version < target:
                    time.sleep(0.0005)
                latencies.append(time.perf_counter() - started)
            follower.stop_tailing()
        return {
            "commits": commits,
            "mean_ms": statistics.fmean(latencies) * 1e3,
            "p50_ms": percentile(latencies, 0.50) * 1e3,
            "p99_ms": percentile(latencies, 0.99) * 1e3,
        }
    finally:
        leader.close()


def run_harness(n: int, commits: int, smoke: bool, json_path: str) -> int:
    import tempfile
    from pathlib import Path

    report = {"n": n, "smoke": smoke, "query": EXAMPLE}
    failures = []
    with tempfile.TemporaryDirectory(prefix="bench-e15-") as tmp:
        base = Path(tmp)
        for gate in (
            gate_convergence,
            gate_lag_accounting,
            gate_warm_replay,
            gate_crash_matrix,
            gate_wire_faults,
        ):
            found = gate(base, n)
            status = "ok" if not found else "FAIL"
            print(f"{gate.__name__:<22} {status}")
            failures.extend(found)

        if not smoke:
            replay = measure_replay_throughput(base, n, commits)
            print(
                f"replay: {replay['commits']} records in "
                f"{replay['seconds']:.3f}s  "
                f"{replay['records_per_second']:,.0f} records/s"
            )
            report["replay"] = replay
            freshness = measure_freshness(base, n, min(commits, 200))
            print(
                f"freshness (tailing): mean {freshness['mean_ms']:.2f}ms  "
                f"p50 {freshness['p50_ms']:.2f}ms  "
                f"p99 {freshness['p99_ms']:.2f}ms"
            )
            report["freshness"] = freshness

    report["failures"] = failures
    with open(json_path, "w", encoding="utf-8") as out:
        json.dump(report, out, indent=2)
    print(f"report written to {json_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: followers converge on both topologies, lag is honest, replay "
        "stays warm, and every crash point and wire fault heals"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload; enforce the replication gates only",
    )
    parser.add_argument("-n", type=int, default=None, help="structure size")
    parser.add_argument(
        "--commits", type=int, default=500, help="commits for throughput runs"
    )
    parser.add_argument("--json", default=DEFAULT_JSON, help="report path")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (24 if args.smoke else 200)
    return run_harness(n, args.commits, args.smoke, args.json)


if __name__ == "__main__":
    sys.exit(main())
