"""E16 — region-sharded scatter-gather vs unsharded execution.

Claim: partitioning a structure into Gaifman-component regions
(``repro.shard``) changes *where* the work runs but not a single byte of
the output — the stream gather reproduces the global enumeration order
exactly — and with the shared-memory chunk mailbox the first page of the
heaviest work unit arrives while that unit is still enumerating, so
first-page latency is decoupled from the slowest shard's finish line.

Two entry points:

* a standalone harness (``python benchmarks/bench_e16_sharding.py``)
  that measures scatter-gather throughput against serial enumeration
  across shard counts and **fails (exit 1) on any divergence**;
* ``--smoke`` (the CI gate) runs a tiny workload and enforces the
  equality contracts only:

  1. sharded ``answers()``/``count()`` are **byte-identical** to the
     unsharded serial oracle for every shard count x gather strategy;
  2. with the streaming mailbox enabled, the heaviest work unit's first
     chunk arrives before that unit — and before the slowest unit —
     finishes producing (``TransferStats`` per-source timestamps);
  3. a changeset applied through :meth:`ShardedDatabase.apply` (split
     per shard, one maintenance pass per plan) leaves the structure,
     every region substructure, and every warm query byte-identical to
     the same commit on a plain warm :class:`Database`.

Both modes emit ``BENCH_sharding.json`` so future PRs can track the
trajectory.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # allow `python benchmarks/bench_e16_sharding.py`
    sys.path.insert(0, REPO_SRC)

from repro.engine.executor import parallel_enumerate  # noqa: E402
from repro.engine.mailbox import mailbox_available  # noqa: E402
from repro.engine.pool import WorkerPool  # noqa: E402
from repro.engine.transport import TransferStats  # noqa: E402
from repro.session import Database  # noqa: E402
from repro.shard import ShardedDatabase  # noqa: E402
from repro.structures import Signature, Structure  # noqa: E402
from repro.structures.serialize import (  # noqa: E402
    fingerprint,
    region_fingerprint,
)

QUERIES = (
    "B(x)",                                   # single-block: per-shard streams
    "B(x) & R(y) & ~E(x,y)",                  # two blocks: merged pipeline
    "exists z. (E(x,z) & B(z)) & R(x)",       # nested witness
)
STREAM_QUERY = "B(x) & R(y) & ~E(x,y)"
DEFAULT_JSON = "BENCH_sharding.json"


def islands(sizes, seed: int = 0) -> Structure:
    """Disjoint path components: the partitioner's natural workload."""
    total = sum(sizes)
    db = Structure(Signature.of(E=2, B=1, R=1), range(total))
    offset = 0
    for size in sizes:
        for position in range(size - 1):
            db.add_fact("E", offset + position, offset + position + 1)
        for position in range(size):
            element = offset + position
            db.add_fact("B" if (element + seed) % 2 == 0 else "R", element)
        offset += size
    return db


def output_digest(answers) -> str:
    hasher = hashlib.sha256()
    for answer in answers:
        hasher.update(repr(answer).encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()


def check_byte_identity(structure, shard_counts, gathers, report, failures):
    """Gate 1: every shard count x gather matches the serial oracle."""
    oracles = {}
    with Database(structure.copy()) as plain:
        for query in QUERIES:
            handle = plain.query(query, backend="serial")
            oracles[query] = (handle.answers().all(), handle.count())
    for shards in shard_counts:
        for gather in gathers:
            started = time.perf_counter()
            with ShardedDatabase(
                structure.copy(), shards=shards, gather=gather
            ) as sdb:
                layout = list(sdb.layout.sizes())
                for query in QUERIES:
                    expected_answers, expected_count = oracles[query]
                    sharded = sdb.query(query)
                    got = sharded.answers().all()
                    if got != expected_answers:
                        failures.append(
                            f"[shards={shards} gather={gather}] {query}: "
                            f"enumeration diverges from serial "
                            f"({output_digest(got)[:12]} != "
                            f"{output_digest(expected_answers)[:12]})"
                        )
                    if sharded.count() != expected_count:
                        failures.append(
                            f"[shards={shards} gather={gather}] {query}: "
                            f"count diverges from serial"
                        )
            elapsed = time.perf_counter() - started
            report["identity_runs"].append(
                {
                    "shards": shards,
                    "gather": gather,
                    "shard_sizes": layout,
                    "seconds": elapsed,
                }
            )
            print(
                f"shards={shards} gather={gather:>6}: sizes={layout} "
                f"all queries byte-identical ({elapsed:.3f}s)"
            )


def check_streaming_first_page(structure, workers, report, failures):
    """Gate 2: the mailbox ships the heaviest unit's first page early."""
    if not mailbox_available():
        print("streaming gate skipped: shared memory unavailable")
        report["streaming"] = {"skipped": "shared memory unavailable"}
        return
    with ShardedDatabase(structure.copy(), shards=workers) as sdb:
        sharded = sdb.query(STREAM_QUERY)
        serial = sharded.answers().all()
        merged = sdb._plan_state(sharded._key).merged
        stats = TransferStats()
        with WorkerPool(workers) as pool:
            started = time.perf_counter()
            streamed = list(
                parallel_enumerate(
                    merged,
                    workers=workers,
                    mode="process",
                    pool=pool,
                    transport="columnar",
                    transfer_stats=stats,
                    chunk_rows=64,
                    mailbox_bytes=4096,  # tiny ring: forced backpressure
                )
            )
            elapsed = time.perf_counter() - started
    if streamed != serial:
        failures.append("mailboxed process run diverges from serial")
    timed = {
        label: entry
        for label, entry in stats.per_source.items()
        if entry["first_at"] is not None and entry["done_at"] is not None
    }
    if not timed:
        failures.append("no per-source transfer timestamps were recorded")
        return
    heaviest_label = max(timed, key=lambda label: timed[label]["rows"])
    heaviest = timed[heaviest_label]
    slowest_done = max(entry["done_at"] for entry in timed.values())
    overlap = heaviest["done_at"] - heaviest["first_at"]
    if heaviest["first_at"] >= heaviest["done_at"]:
        failures.append(
            f"heaviest unit {heaviest_label} did not stream: first chunk at "
            f"{heaviest['first_at']:.6f} but enumeration done at "
            f"{heaviest['done_at']:.6f}"
        )
    if heaviest["first_at"] >= slowest_done:
        failures.append(
            f"heaviest unit {heaviest_label}'s first page waited for the "
            f"slowest unit to finish"
        )
    report["streaming"] = {
        "answers": len(streamed),
        "seconds": elapsed,
        "chunks": stats.chunks,
        "bytes_received": stats.bytes_received,
        "heaviest_unit": heaviest_label,
        "heaviest_rows": heaviest["rows"],
        "overlap_seconds": overlap,
        "sources": len(stats.per_source),
    }
    print(
        f"streaming: {len(streamed)} answers over {stats.chunks} chunks; "
        f"heaviest unit {heaviest_label} ({heaviest['rows']} rows) "
        f"first page {overlap:.4f}s before its own finish"
    )


def update_stream(structure, count: int = 12):
    """Deterministic shard-local flips guaranteed to change state."""
    ops = []
    domain = list(structure.domain)
    for index, element in enumerate(domain[:count]):
        if index % 3 == 0:
            present = structure.has_fact("B", element)
            ops.append((not present, "B", (element,)))
        elif index % 3 == 1:
            present = structure.has_fact("R", element)
            ops.append((not present, "R", (element,)))
        else:
            edge = (element, element)
            ops.append((not structure.has_fact("E", *edge), "E", edge))
    return ops


def check_apply_equivalence(structure, report, failures):
    """Gate 3: a split commit == the same commit on a plain warm session."""
    ops = update_stream(structure)
    with Database(structure.copy()) as plain, ShardedDatabase(
        structure.copy(), shards=3
    ) as sdb:
        # Warm BOTH sides: identical pipelines before identical surgery.
        for query in QUERIES:
            plain.query(query, backend="serial").answers().all()
            sdb.query(query).answers().all()
        result = sdb.apply(ops)
        plain.apply(ops)
        if result.maintained_plans == 0:
            failures.append("split commit maintained no plans (expected warm)")
        if result.fingerprint_after != fingerprint(plain.structure):
            failures.append("split commit fingerprint diverges from plain")
        for shard, substructure in zip(sdb.layout.shards, sdb.substructures):
            if fingerprint(substructure) != region_fingerprint(
                sdb.structure, shard
            ):
                failures.append(
                    "a region substructure drifted from the full structure"
                )
                break
        for query in QUERIES:
            sharded_rows = sdb.query(query).answers().all()
            plain_rows = plain.query(query, backend="serial").answers().all()
            if sharded_rows != plain_rows:
                failures.append(
                    f"[apply] {query}: maintained sharded enumeration "
                    f"diverges from the maintained plain session"
                )
        report["apply"] = {
            "ops": len(ops),
            "effective": result.ops_effective,
            "maintained_plans": result.maintained_plans,
        }
        print(
            f"apply: {result.ops_effective} effective ops, "
            f"{result.maintained_plans} plans maintained, "
            f"all queries byte-identical to the plain session"
        )


def measure_throughput(structure, shard_counts, report):
    """Standalone mode: wall-clock of sharded gathers vs serial."""
    with Database(structure.copy()) as plain:
        started = time.perf_counter()
        baseline = len(plain.query(STREAM_QUERY, backend="serial").answers().all())
        serial_seconds = time.perf_counter() - started
    report["throughput"] = {"serial_seconds": serial_seconds, "runs": []}
    print(f"serial: {baseline} answers in {serial_seconds:.3f}s")
    for shards in shard_counts:
        for gather in ("stream", "engine"):
            with ShardedDatabase(
                structure.copy(), shards=shards, gather=gather
            ) as sdb:
                started = time.perf_counter()
                rows = len(sdb.query(STREAM_QUERY).answers().all())
                elapsed = time.perf_counter() - started
            assert rows == baseline
            report["throughput"]["runs"].append(
                {"shards": shards, "gather": gather, "seconds": elapsed}
            )
            print(
                f"shards={shards} gather={gather:>6}: {rows} answers "
                f"in {elapsed:.3f}s"
            )


def run_harness(sizes, workers: int, smoke: bool, json_path: str) -> int:
    structure = islands(sizes)
    print(
        f"workload: n={structure.cardinality}, islands={len(sizes)}, "
        f"sizes={list(sizes)}"
    )
    report = {
        "n": structure.cardinality,
        "islands": list(sizes),
        "smoke": smoke,
        "identity_runs": [],
    }
    failures: list = []

    shard_counts = (1, 3, 5) if smoke else (2, 4, 8)
    gathers = ("stream", "engine")
    check_byte_identity(structure, shard_counts, gathers, report, failures)
    check_streaming_first_page(structure, workers, report, failures)
    check_apply_equivalence(structure, report, failures)
    if not smoke:
        measure_throughput(structure, shard_counts, report)

    report["failures"] = failures
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"report written to {json_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: sharded scatter-gather is byte-identical to serial for every "
        "configuration, the mailbox streams the heaviest unit's first page "
        "early, and split commits match the plain session"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload; enforce the equality gates only",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--json", default=DEFAULT_JSON, help="report path")
    args = parser.parse_args(argv)
    sizes = (
        (40, 30, 20, 15, 10, 5)
        if args.smoke
        else (300, 250, 200, 150, 100, 80, 60, 40)
    )
    return run_harness(sizes, args.workers, args.smoke, args.json)


if __name__ == "__main__":
    sys.exit(main())
