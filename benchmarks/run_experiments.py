"""Regenerate every experiment table for EXPERIMENTS.md.

Standalone (no pytest):  python benchmarks/run_experiments.py [--fast]

Prints one markdown table per experiment E1..E9 together with the scaling
exponents / flatness checks that constitute the paper's claims.  The
pytest-benchmark modules time the same code paths with statistical rigor;
this script favors a complete, readable summary.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.core.baselines import ListJoinBaseline
from repro.core.counting import count_answers
from repro.core.enumeration import BranchEnumerator, arm_enumerators, enumerate_answers
from repro.core.model_checking import model_check
from repro.core.pipeline import Pipeline
from repro.core.testing import test_answer
from repro.storage.cost_model import CostMeter
from repro.storage.trie import StoringTrie

from workloads import (
    EXAMPLE_23,
    EXAMPLE_23_POSITIVE,
    QUANTIFIED_QUERY,
    SENTENCE_FAR_PAIR,
    SENTENCE_GUARDED,
    TRIPLE_QUERY,
    colored_graph,
    consume,
    fitted_exponent,
    query,
    three_colored_graph,
)


def timed(fn, repeats=1):
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
        gc.enable()
    return best, result


def table(headers, rows):
    print("| " + " | ".join(headers) + " |")
    print("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        print("| " + " | ".join(str(cell) for cell in row) + " |")
    print()


def e1_preprocessing(sizes):
    print("## E1 — preprocessing scales pseudo-linearly\n")
    rows, times = [], []
    for n in sizes:
        db = colored_graph(n, 4)
        elapsed, pipeline = timed(lambda db=db: Pipeline(db, query(EXAMPLE_23)))
        rows.append((n, f"{elapsed:.3f}", pipeline.stats()["graph_nodes"]))
        times.append(elapsed)
    table(["n", "preprocessing (s)", "colored-graph nodes"], rows)
    exponent = fitted_exponent(sizes, times)
    print(f"fitted exponent: **{exponent:.2f}** (claim: ~1, certainly < 2)\n")


def e2_delay(sizes):
    """Full enumerations: the steady-state regime.  (A fixed answer
    budget at large n would under-amortize the one-time reach-set
    memoization and mis-measure the delay.)"""
    print("## E2 — enumeration delay is constant\n")
    rows = []
    for n in sizes:
        db = colored_graph(n, 4)
        pipeline = Pipeline(db, query(EXAMPLE_23))
        arm_enumerators(pipeline)  # arming is preprocessing, not delay
        meter = CostMeter()
        gc.disable()
        started = time.perf_counter()
        count = 0
        for _ in enumerate_answers(pipeline):
            count += 1
        elapsed = time.perf_counter() - started
        gc.enable()
        # Step deltas over a 20k-answer prefix (exact, n-independent).
        for _ in enumerate_answers(pipeline, meter=meter):
            meter.mark()
            if len(meter.deltas()) >= 20_000:
                break
        deltas = meter.deltas()
        rows.append(
            (
                n,
                f"{count:,}",
                f"{elapsed / max(1, count) * 1e6:.2f}",
                max(deltas),
                f"{sum(deltas) / len(deltas):.1f}",
            )
        )
    table(
        ["n", "answers (full run)", "time/answer (us)", "max step delta", "mean step delta"],
        rows,
    )
    print("claim: time/answer and step deltas flat in n "
          "(the RAM-model content of Thm 2.7)\n")


def e3_counting(sizes, workers=4):
    from repro.engine import WorkerPool, parallel_count

    print("## E3 — counting is pseudo-linear while |q(A)| is quadratic\n")
    rows, times, counts = [], [], []
    with WorkerPool(workers) as pool:
        for n in sizes:
            db = colored_graph(n, 4)
            pipeline = Pipeline(db, query(EXAMPLE_23))
            elapsed, count = timed(lambda p=pipeline: count_answers(p), repeats=2)
            par_elapsed, par_count = timed(
                lambda p=pipeline: parallel_count(
                    p, workers=workers, mode="thread", pool=pool
                ),
                repeats=2,
            )
            assert par_count == count, "parallel count diverged from serial"
            rows.append((n, f"{elapsed:.3f}", f"{par_elapsed:.3f}", f"{count:,}"))
            times.append(elapsed)
            counts.append(count)
    table(["n", "count time (s)", "parallel (s)", "|q(A)|"], rows)
    print(
        f"fitted exponents — time: **{fitted_exponent(sizes, times):.2f}** "
        f"(claim ~1), answers: **{fitted_exponent(sizes, counts):.2f}** "
        "(~2: the result set itself is quadratic); parallel counts exact\n"
    )


def e4_testing(sizes, probes=400):
    print("## E4 — membership testing is constant time\n")
    import random

    rows = []
    for n in sizes:
        db = colored_graph(n, 4)
        pipeline = Pipeline(db, query(EXAMPLE_23))
        rng = random.Random(5)
        domain = list(db.domain)
        candidates = [
            (rng.choice(domain), rng.choice(domain)) for _ in range(probes)
        ]
        elapsed, hits = timed(
            lambda: sum(1 for c in candidates if test_answer(pipeline, c)),
            repeats=3,
        )
        rows.append((n, f"{elapsed / probes * 1e6:.2f}", f"{hits / probes:.2f}"))
    table(["n", "time/test (us)", "positive fraction"], rows)
    print("claim: per-test time flat in n\n")


def e5_vs_naive(sizes):
    print("## E5 — skip enumeration vs the list-join baseline (positive query)\n")
    rows = []
    for n in sizes:
        db = colored_graph(n, 4)
        pipeline = Pipeline(db, query(EXAMPLE_23_POSITIVE))
        ours, answers = timed(
            lambda p=pipeline: sum(1 for _ in enumerate_answers(p))
        )
        baseline = ListJoinBaseline(query(EXAMPLE_23_POSITIVE), db)
        theirs, _ = timed(lambda b=baseline: sum(1 for _ in b.enumerate()))
        rows.append(
            (n, f"{answers:,}", f"{ours:.3f}", f"{theirs:.3f}", f"{theirs / max(ours, 1e-9):.1f}x")
        )
    table(["n", "answers", "ours (s)", "list-join (s)", "speedup"], rows)
    print("claim: baseline grows ~n^2 (all candidate pairs), ours ~answers\n")


def e6_degree_sweep(n):
    print("## E6 — degree sweep at fixed n\n")
    import math

    rows = []
    schedule = {
        "2": 2,
        "4": 4,
        "8": 8,
        "log n": max(2, int(math.log2(n))),
        "n^0.4": max(2, int(n ** 0.4)),
    }
    for label, degree in schedule.items():
        db = colored_graph(n, degree)
        prep, pipeline = timed(lambda db=db: Pipeline(db, query(EXAMPLE_23)))
        cnt_time, count = timed(lambda p=pipeline: count_answers(p))
        rows.append(
            (label, db.degree, f"{prep:.3f}", f"{cnt_time:.3f}", f"{count:,}")
        )
    table(
        ["degree schedule", "actual d", "preprocessing (s)", "count (s)", "|q(A)|"],
        rows,
    )
    print("claim: cost grows with d (the d^h(|q|) factors); still far from n^2\n")


def e7_skip_ablation(n):
    print("## E7 — skip ablation: lazy memo vs strict precompute\n")
    db = colored_graph(n, 3)
    rows = []
    for mode in ("lazy", "precompute"):
        pipeline = Pipeline(db, query(EXAMPLE_23))

        def arm():
            cells = 0
            for branch in pipeline.branches:
                enumerator = BranchEnumerator(pipeline, branch, skip_mode=mode)
                cells += enumerator.skip_cells
            return cells

        arm_time, cells = timed(arm)
        enum_time, produced = timed(
            lambda p=pipeline, m=mode: consume(
                enumerate_answers(p, skip_mode=m), 20_000
            )
        )
        rows.append((mode, f"{arm_time:.3f}", cells, f"{enum_time:.3f}", produced))
    table(
        ["mode", "arming (s)", "skip cells precomputed", "enum 20k (s)", "answers"],
        rows,
    )
    print(
        "claim: strict mode pays the paper's d-hat^(3k^2)-flavored bill up "
        "front; outputs are identical\n"
    )


def e8_storing(n=1 << 14, keys=5_000):
    print("## E8 — Storing-Theorem trie: eps trade-off\n")
    import random

    rng = random.Random(7)
    key_list = [(rng.randrange(n), rng.randrange(n)) for _ in range(keys)]
    rows = []
    for eps in (0.25, 0.5, 1.0):
        def build():
            trie = StoringTrie(n=n, k=2, eps=eps)
            for index, key in enumerate(key_list):
                trie.store(key, index)
            return trie

        build_time, trie = timed(build)
        lookup_time, _ = timed(
            lambda t=trie: sum(1 for key in key_list if t.lookup(key) is not None),
            repeats=3,
        )
        rows.append(
            (
                eps,
                trie.depth,
                f"{build_time * 1e3:.1f}",
                f"{lookup_time / keys * 1e6:.2f}",
                f"{trie.slots_allocated:,}",
            )
        )
    table(
        ["eps", "depth", "build (ms)", "lookup (us)", "slots allocated"],
        rows,
    )
    print("claim: smaller eps -> deeper trie, slower lookup, fewer slots; "
          "lookup cost independent of stored-key count\n")


def e10_dynamic(sizes, updates=50):
    print("## E10 — dynamic updates: local recomputation vs full rebuild\n")
    import random

    from repro.core.dynamic import DynamicQuery

    rows = []
    for n in sizes:
        db = colored_graph(n, 4).copy()
        dyn = DynamicQuery(db, query(EXAMPLE_23))
        rng = random.Random(3)
        domain = list(db.domain)
        stream = [
            (rng.choice(domain), rng.choice(domain)) for _ in range(updates)
        ]

        def apply_all():
            for a, b in stream:
                if db.has_fact("E", a, b):
                    dyn.delete_fact("E", a, b)
                else:
                    dyn.insert_fact("E", a, b)

        elapsed, _ = timed(apply_all)
        rebuild_time, _ = timed(lambda: Pipeline(db, query(EXAMPLE_23)))
        rows.append(
            (
                n,
                f"{elapsed / updates * 1e3:.2f}",
                f"{rebuild_time * 1e3:.1f}",
                f"{rebuild_time / (elapsed / updates):.0f}x",
            )
        )
    table(
        ["n", "time/update (ms)", "full rebuild (ms)", "rebuild/update ratio"],
        rows,
    )
    print("claim: update cost flat-ish in n; the ratio to a full rebuild "
          "grows with n ([Vig20]'s question, answered locally)\n")


def e9_model_checking(sizes):
    print("## E9 — model checking sentences pseudo-linearly\n")
    rows, times = [], []
    for n in sizes:
        db = colored_graph(n, 3)
        far, verdict_far = timed(
            lambda db=db: model_check(query(SENTENCE_FAR_PAIR), db)
        )
        guarded, verdict_guarded = timed(
            lambda db=db: model_check(query(SENTENCE_GUARDED), db)
        )
        rows.append(
            (n, f"{far:.3f}", verdict_far, f"{guarded:.3f}", verdict_guarded)
        )
        times.append(far)
    table(
        ["n", "far-pair sentence (s)", "verdict", "guarded sentence (s)", "verdict"],
        rows,
    )
    print(f"fitted exponent (far-pair): **{fitted_exponent(sizes, times):.2f}** "
          "(claim ~1)\n")


def e11_parallel(sizes, workers=4) -> None:
    """E11: branch-parallel enumeration with a deterministic merge."""
    from concurrent.futures import ProcessPoolExecutor

    from repro.engine import parallel_enumerate, prearm, warm_pool

    print(f"## E11 — parallel batch engine vs serial ({workers} workers)\n")
    rows = []
    for n in sizes:
        db = three_colored_graph(n, 4)
        pipeline = Pipeline(db, query(TRIPLE_QUERY))
        prearm(pipeline)
        serial_t, serial = timed(
            lambda: list(parallel_enumerate(pipeline, mode="serial"))
        )
        thread_t, threaded = timed(
            lambda: list(
                parallel_enumerate(pipeline, workers=workers, mode="thread")
            )
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            warm_pool(pool, pipeline, workers)
            process_t, processed = timed(
                lambda pool=pool: list(
                    parallel_enumerate(
                        pipeline, workers=workers, mode="process", executor=pool
                    )
                )
            )
        identical = serial == threaded == processed
        rows.append(
            (
                n,
                len(serial),
                f"{serial_t:.3f}",
                f"{thread_t:.3f}",
                f"{process_t:.3f}",
                identical,
            )
        )
    table(
        ["n", "answers", "serial (s)", "thread (s)", "process warm (s)",
         "identical"],
        rows,
    )
    print("(speedup is hardware-bound — ~1x on one core, scaling with "
          "cores; the output must be byte-identical in every mode)\n")


def e12_transport(sizes, workers=4) -> None:
    """E12: columnar answer transport vs pickled tuple lists."""
    from repro.engine import WorkerPool, prearm, run_branches, warm_pool
    from repro.engine.transport import TransferStats

    import pickle

    print(f"## E12 — columnar answer transport ({workers} workers)\n")
    rows = []
    for n in sizes:
        db = three_colored_graph(n, 4)
        pipeline = Pipeline(db, query(TRIPLE_QUERY))
        prearm(pipeline)
        with WorkerPool(workers) as pool:
            warm_pool(pool, pipeline, workers)
            stats = TransferStats()
            columnar_t, chunks = timed(
                lambda: list(
                    run_branches(
                        pipeline, workers=workers, mode="process", pool=pool,
                        transport="columnar", transfer_stats=stats,
                    )
                )
            )
            columnar = [answer for chunk in chunks for answer in chunk]
            pickle_t, shards = timed(
                lambda: list(
                    run_branches(
                        pipeline, workers=workers, mode="process", pool=pool,
                        transport="pickle",
                    )
                )
            )
            pickled = [answer for shard in shards for answer in shard]
        pickle_bytes = sum(len(pickle.dumps(shard)) for shard in shards)
        ratio = pickle_bytes / stats.bytes_received if stats.bytes_received else 0.0
        rows.append(
            (
                n,
                len(columnar),
                stats.bytes_received,
                pickle_bytes,
                f"{ratio:.1f}x",
                f"{columnar_t:.3f}",
                f"{pickle_t:.3f}",
                columnar == pickled,
            )
        )
    table(
        ["n", "answers", "columnar (B)", "pickle (B)", "reduction",
         "columnar (s)", "pickle (s)", "identical"],
        rows,
    )
    print("(the codec interns elements to dense ids, packs per-column "
          "fixed-width buffers, and compresses chunks; identical output "
          "is the hard gate)\n")


def e13_updates(sizes) -> None:
    """E13: transactional batch commits vs one-at-a-time maintenance."""
    from bench_e13_updates import (
        run_batch,
        run_singles,
        update_stream,
    )
    from repro.structures.random_gen import random_colored_graph

    print("## E13 — transactional batch updates (facts/sec)\n")
    rows = []
    for n in sizes:
        db = random_colored_graph(n, max_degree=4, seed=42)
        ops = update_stream(db, 100)
        singles_t, singles_db, _ = run_singles(db, ops)
        batch_t, batch_db, passes, result = run_batch(db, ops)
        identical = (
            batch_db.structure_fingerprint == singles_db.structure_fingerprint
        )
        rows.append(
            (
                n,
                result.ops_effective,
                f"{len(ops) / singles_t:.0f}",
                f"{len(ops) / batch_t:.0f}",
                f"{singles_t / batch_t:.1f}x",
                passes,
                identical,
            )
        )
        singles_db.close()
        batch_db.close()
    table(
        ["n", "effective", "singles (f/s)", "batch (f/s)", "speedup",
         "passes/plan", "identical"],
        rows,
    )
    print("(one transaction = one maintenance pass per cached plan over "
          "the whole changeset; identical final fingerprints are the "
          "hard gate)\n")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true", help="smaller sweeps")
    args = parser.parse_args()

    big = [512, 1024, 2048, 4096] if not args.fast else [256, 512, 1024]
    mid = [256, 512, 1024, 2048] if not args.fast else [128, 256, 512]

    print("# Experiment summary (generated by benchmarks/run_experiments.py)\n")
    e1_preprocessing(big)
    e2_delay(big)
    e3_counting(big)
    e4_testing(big)
    e5_vs_naive(mid)
    e6_degree_sweep(1024 if not args.fast else 512)
    e7_skip_ablation(512 if not args.fast else 256)
    e8_storing()
    e9_model_checking(big)
    e10_dynamic(mid)
    e11_parallel([96, 128] if not args.fast else [48, 64])
    e12_transport([96, 128] if not args.fast else [48, 64])
    e13_updates([256, 512] if not args.fast else [96, 128])


if __name__ == "__main__":
    main()
