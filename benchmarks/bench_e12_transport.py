"""E12 — columnar answer transport vs. pickled tuple lists.

Claim: process-mode enumeration no longer pays for shipping whole
pickled answer lists back to the parent.  The columnar codec (interned
element ids, per-column fixed-width buffers, bounded ``chunk_rows``
chunks, opportunistic zlib) cuts the parent-received bytes by >= 2x on
the large triple workload while keeping the merged output
*byte-identical* to serial enumeration, and the bounded chunks + lazy
decode lower the time-to-first-chunk (the ``Answers.page(0)`` latency
floor).

Two entry points:

* a standalone harness (``python benchmarks/bench_e12_transport.py``)
  that measures bytes + time-to-first-chunk for both transports,
  **fails (exit 1) on any transport/serial divergence**, and in full
  mode also fails if the columnar codec does not reach the 2x byte
  reduction; CI runs ``--smoke``, which sweeps every
  transport x chunk-size configuration on a tiny workload and enforces
  byte-identity only;
* both modes emit ``BENCH_transport.json`` (bytes transferred,
  time-to-first-chunk, ratio) so future PRs can track the trajectory.

Methodology notes: the process pool is warmed first (worker pipeline
rebuilds are preprocessing in the service regime); pickle-transport
bytes are measured by re-pickling each received shard list — the same
payload ``multiprocessing`` moved, modulo constant framing.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pickle
import sys
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # allow `python benchmarks/bench_e12_transport.py`
    sys.path.insert(0, REPO_SRC)

from repro.core.pipeline import Pipeline  # noqa: E402
from repro.engine import (  # noqa: E402
    WorkerPool,
    parallel_enumerate,
    prearm,
    run_branches,
    warm_pool,
)
from repro.engine.transport import TransferStats  # noqa: E402
from repro.fo.parser import parse  # noqa: E402
from repro.structures.random_gen import random_colored_graph  # noqa: E402

TRIPLE_QUERY = "B(x) & R(y) & G(z) & ~E(x,y) & ~E(y,z) & ~E(x,z)"

DEFAULT_JSON = "BENCH_transport.json"


def build_workload(n: int, degree: int = 4, seed: int = 42):
    db = random_colored_graph(n, max_degree=degree, colors=("B", "R", "G"), seed=seed)
    return db, parse(TRIPLE_QUERY)


def output_digest(answers) -> str:
    hasher = hashlib.sha256()
    for answer in answers:
        hasher.update(repr(answer).encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()


def measure(pipeline, pool, workers, transport, chunk_rows):
    """One process-mode run: (answers, bytes_to_parent, ttfc, total_time).

    ``bytes_to_parent`` is the columnar codec's actual received bytes
    (TransferStats) or the re-pickled size of each shard list for the
    legacy transport; ``ttfc`` is the time until the first chunk of
    answers is decoded and available (the first-page latency floor).
    """
    stats = TransferStats()
    started = time.perf_counter()
    chunks = run_branches(
        pipeline,
        workers=workers,
        mode="process",
        pool=pool,
        transport=transport,
        chunk_rows=chunk_rows,
        transfer_stats=stats,
    )
    answers = []
    ttfc = None
    pickled_bytes = 0
    for chunk in chunks:
        if ttfc is None:
            ttfc = time.perf_counter() - started
        if transport == "pickle":
            pickled_bytes += len(pickle.dumps(chunk))
        answers.extend(chunk)
    total = time.perf_counter() - started
    if ttfc is None:
        ttfc = total
    received = stats.bytes_received if transport == "columnar" else pickled_bytes
    return answers, received, ttfc, total


def run_harness(
    n: int, workers: int, smoke: bool, json_path: str, require_ratio: float
) -> int:
    db, query = build_workload(n)
    print(f"workload: n={db.cardinality}, degree={db.degree}, query={TRIPLE_QUERY}")

    started = time.perf_counter()
    pipeline = Pipeline(db, query)
    print(f"preprocessing: {time.perf_counter() - started:.2f}s; "
          f"branches={pipeline.branch_count}")

    prearm(pipeline)
    serial = list(parallel_enumerate(pipeline, mode="serial"))
    serial_digest = output_digest(serial)
    print(f"serial: {len(serial)} answers")

    failures = 0
    report = {
        "workload": {"n": db.cardinality, "workers": workers, "answers": len(serial)},
        "runs": [],
    }

    chunk_configs = (1, 7, None) if smoke else (None,)
    results = {}
    with WorkerPool(workers) as pool:
        started = time.perf_counter()
        warm_pool(pool, pipeline, workers)
        print(f"process pool warm-up ({workers} workers): "
              f"{time.perf_counter() - started:.2f}s")
        for transport in ("pickle", "columnar"):
            for chunk_rows in chunk_configs:
                answers, received, ttfc, total = measure(
                    pipeline, pool, workers, transport, chunk_rows
                )
                identical = output_digest(answers) == serial_digest
                label = f"{transport:8s} chunk_rows={chunk_rows or 'auto'}"
                verdict = "byte-identical" if identical else "DIVERGED"
                print(
                    f"{label}: {received:>10d} bytes to parent, "
                    f"first chunk {ttfc * 1000:.1f}ms, total {total:.2f}s "
                    f"[{verdict}]"
                )
                if not identical:
                    failures += 1
                if chunk_rows is None:
                    results[transport] = (received, ttfc)
                report["runs"].append(
                    {
                        "transport": transport,
                        "chunk_rows": chunk_rows,
                        "bytes_to_parent": received,
                        "time_to_first_chunk_s": round(ttfc, 6),
                        "total_s": round(total, 6),
                        "identical": identical,
                    }
                )

    pickle_bytes, pickle_ttfc = results["pickle"]
    columnar_bytes, columnar_ttfc = results["columnar"]
    # None (JSON null), never float('inf'): json.dump would emit the
    # non-standard Infinity literal and break strict consumers.
    ratio = (
        round(pickle_bytes / columnar_bytes, 2) if columnar_bytes else None
    )
    report["bytes_ratio"] = ratio
    report["ttfc_ratio"] = (
        round(pickle_ttfc / columnar_ttfc, 2) if columnar_ttfc else None
    )
    ratio_text = f"{ratio:.1f}x" if ratio is not None else "n/a (0 bytes)"
    print(
        f"bytes: pickle {pickle_bytes} vs columnar {columnar_bytes} "
        f"({ratio_text} smaller); first chunk: pickle {pickle_ttfc * 1000:.1f}ms "
        f"vs columnar {columnar_ttfc * 1000:.1f}ms"
    )

    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {json_path}")

    if failures:
        print(f"FAIL: {failures} configuration(s) diverged from the serial output")
        return 1
    if not smoke and ratio is not None and ratio < require_ratio:
        print(
            f"FAIL: columnar transport only {ratio:.2f}x smaller than pickle "
            f"(target >= {require_ratio}x)"
        )
        return 1
    print(f"OK: all transports byte-identical; columnar ships {ratio_text} "
          f"fewer bytes to the parent")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload; sweep every transport x chunk config, "
        "enforce byte-identity only",
    )
    parser.add_argument("-n", type=int, default=None, help="structure size")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--require-ratio",
        type=float,
        default=2.0,
        help="minimum pickle/columnar byte ratio in full mode",
    )
    parser.add_argument("--json", default=DEFAULT_JSON, help="report path")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (48 if args.smoke else 140)
    return run_harness(n, args.workers, args.smoke, args.json, args.require_ratio)


if __name__ == "__main__":
    sys.exit(main())
