"""E8 — the Storing Theorem in practice, plus the durability layer.

Claims (pytest-benchmark groups):

* lookups cost O(depth) = O(k/eps) array accesses — independent of the
  number of stored keys and of ``n`` (group "E8-lookup");
* build cost and storage scale with ``|dom(f)| * n^eps`` — larger ``eps``
  means shallower tries and faster lookups but more slack per node
  (group "E8-build", ``slots_allocated`` in extra_info);
* the hash-table realization (``dict``) of the same interface, for
  reference.

Standalone harness (``python benchmarks/bench_e8_storing.py``): the
snapshot + WAL durability layer on top of the storing substrate —

* recovery time: ``Database.open`` over a snapshot plus a WAL tail must
  restore a state fingerprint- and answer-identical to the pre-crash
  database;
* warm reopen: after a checkpoint spilled the pipeline cache, the first
  cached-plan query on a reopened database must be a cache hit (no
  re-preprocessing) and **>= 2x faster** than the same first query on a
  cold (``load_warm=False``) reopen.

Both modes emit ``BENCH_storing.json``; ``--smoke`` is the CI gate.
"""

import random

import pytest

from repro.storage.trie import DictBackend, StoringTrie

N = 1 << 14
KEY_COUNT = 5_000
EPSILONS = [0.25, 0.5, 1.0]


def _keys(seed=7):
    rng = random.Random(seed)
    return [
        (rng.randrange(N), rng.randrange(N)) for _ in range(KEY_COUNT)
    ]


@pytest.mark.parametrize("eps", EPSILONS)
@pytest.mark.benchmark(group="E8-build")
def bench_build(benchmark, eps):
    keys = _keys()

    def build():
        trie = StoringTrie(n=N, k=2, eps=eps)
        for index, key in enumerate(keys):
            trie.store(key, index)
        return trie

    trie = benchmark(build)
    benchmark.extra_info["eps"] = eps
    benchmark.extra_info["depth"] = trie.depth
    benchmark.extra_info["slots_allocated"] = trie.slots_allocated


@pytest.mark.parametrize("eps", EPSILONS)
@pytest.mark.benchmark(group="E8-lookup")
def bench_lookup(benchmark, eps):
    keys = _keys()
    trie = StoringTrie(n=N, k=2, eps=eps)
    for index, key in enumerate(keys):
        trie.store(key, index)
    probes = keys[:500] + _keys(seed=8)[:500]  # half hits, half misses

    benchmark(lambda: sum(1 for key in probes if trie.lookup(key) is not None))
    benchmark.extra_info["eps"] = eps
    benchmark.extra_info["depth"] = trie.depth


@pytest.mark.benchmark(group="E8-lookup")
def bench_lookup_dict_reference(benchmark):
    keys = _keys()
    table = DictBackend(k=2)
    for index, key in enumerate(keys):
        table.store(key, index)
    probes = keys[:500] + _keys(seed=8)[:500]

    benchmark(lambda: sum(1 for key in probes if table.lookup(key) is not None))
    benchmark.extra_info["eps"] = "dict"

# -- standalone durability harness --------------------------------------

import argparse  # noqa: E402
import json  # noqa: E402
import os  # noqa: E402
import shutil  # noqa: E402
import statistics  # noqa: E402
import sys  # noqa: E402
import tempfile  # noqa: E402
import time  # noqa: E402

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # allow `python benchmarks/bench_e8_storing.py`
    sys.path.insert(0, REPO_SRC)

from repro.fo.parser import parse  # noqa: E402
from repro.fo.semantics import naive_answers  # noqa: E402
from repro.session import Database  # noqa: E402
from repro.structures.random_gen import random_colored_graph  # noqa: E402

EXAMPLE = "B(x) & R(y) & ~E(x,y)"
QUANTIFIED = "B(x) & exists z. (R(z) & ~E(x,z))"
WARM_QUERIES = (EXAMPLE, QUANTIFIED)

DEFAULT_JSON = "BENCH_storing.json"


def build_workload(n: int, degree: int = 4, seed: int = 42):
    return random_colored_graph(n, max_degree=degree, seed=seed)


def update_stream(structure, count: int, seed: int = 7):
    rng = random.Random(seed)
    domain = list(structure.domain)
    existing_edges = sorted(structure.facts("E"))
    ops = []
    for index in range(count):
        roll = rng.random()
        if roll < 0.35 and existing_edges:
            ops.append((False, "E", existing_edges[index % len(existing_edges)]))
        elif roll < 0.7:
            ops.append((True, "E", (rng.choice(domain), rng.choice(domain))))
        else:
            relation = rng.choice(["B", "R"])
            element = rng.choice(domain)
            insert = rng.random() < 0.5
            ops.append((insert, relation, (element,)))
    return ops


def oracle(structure, text):
    formula = parse(text)
    return sorted(naive_answers(formula, structure, order=sorted(formula.free)))


def measure_recovery(structure, commit_count: int, base_dir: str):
    """Build a store with a WAL tail; time Database.open over it.

    Returns (metrics dict, failure strings).
    """
    failures = []
    path = os.path.join(base_dir, "recovery")
    with Database.open(path, structure=structure.copy()) as db:
        for start in range(commit_count):
            db.apply(update_stream(db.structure, 6, seed=100 + start))
        want_fingerprint = db.structure_fingerprint
        want_version = db.version
        want_answers = oracle(db.structure, EXAMPLE)
    wal_bytes = os.path.getsize(os.path.join(path, "wal.jsonl"))

    started = time.perf_counter()
    with Database.open(path) as db:
        recovery_seconds = time.perf_counter() - started
        if db.structure_fingerprint != want_fingerprint:
            failures.append("recovered fingerprint diverges from pre-crash")
        if db.version != want_version:
            failures.append("recovered version diverges from pre-crash")
        if sorted(db.query(EXAMPLE).answers().all()) != want_answers:
            failures.append("recovered answers diverge from pre-crash")
    metrics = {
        "wal_commits_replayed": commit_count,
        "wal_bytes": wal_bytes,
        "recovery_seconds": recovery_seconds,
    }
    return metrics, failures


def first_query_seconds(path: str, load_warm: bool) -> float:
    """Open the store and time the first cached-plan query end to end."""
    with Database.open(path, load_warm=load_warm) as db:
        started = time.perf_counter()
        query = db.query(EXAMPLE)
        query.count()
        elapsed = time.perf_counter() - started
        del query
    return elapsed


def measure_warm_reopen(structure, base_dir: str, rounds: int):
    """Warm-spill checkpoint, then warm vs cold first-query latency."""
    failures = []
    path = os.path.join(base_dir, "warm")
    with Database.open(path, structure=structure.copy()) as db:
        for text in WARM_QUERIES:
            db.query(text).count()
        result = db.checkpoint()
        want_count = len(oracle(db.structure, EXAMPLE))
    if result.warm_entries < len(WARM_QUERIES):
        failures.append(
            f"checkpoint spilled {result.warm_entries} warm plans, "
            f"expected {len(WARM_QUERIES)}"
        )

    # Deterministic gate first: the warm reopen's first query must be a
    # cache hit that answers correctly without any preprocessing miss.
    with Database.open(path) as db:
        if db.query(EXAMPLE).count() != want_count:
            failures.append("warm reopen answers diverge")
        stats = db.stats()
        if stats["misses"] != 0 or stats["hits"] < 1:
            failures.append(
                "warm reopen's first query missed the pipeline cache "
                f"(hits={stats['hits']}, misses={stats['misses']})"
            )

    cold = [first_query_seconds(path, load_warm=False) for _ in range(rounds)]
    warm = [first_query_seconds(path, load_warm=True) for _ in range(rounds)]
    cold_median = statistics.median(cold)
    warm_median = statistics.median(warm)
    speedup = cold_median / warm_median if warm_median > 0 else float("inf")
    if speedup < 2.0:
        failures.append(
            f"warm reopen first query only {speedup:.2f}x faster than cold "
            "(gate: >= 2x)"
        )
    metrics = {
        "warm_plans_spilled": result.warm_entries,
        "cold_first_query_seconds": cold_median,
        "warm_first_query_seconds": warm_median,
        "warm_over_cold_speedup": speedup,
        "rounds": rounds,
    }
    return metrics, failures


def run_harness(n: int, commit_count: int, rounds: int, smoke: bool,
                json_path: str) -> int:
    structure = build_workload(n)
    print(
        f"workload: n={structure.cardinality}, degree={structure.degree}; "
        f"plans={list(WARM_QUERIES)}"
    )
    base_dir = tempfile.mkdtemp(prefix="bench-e8-store-")
    try:
        recovery, failures = measure_recovery(structure, commit_count, base_dir)
        print(
            f"recovery: {recovery['wal_commits_replayed']} WAL commits "
            f"({recovery['wal_bytes']} bytes) replayed in "
            f"{recovery['recovery_seconds']:.4f}s"
        )
        warm, warm_failures = measure_warm_reopen(structure, base_dir, rounds)
        failures.extend(warm_failures)
        print(
            f"first query after reopen: cold "
            f"{warm['cold_first_query_seconds']:.4f}s, warm "
            f"{warm['warm_first_query_seconds']:.4f}s "
            f"({warm['warm_over_cold_speedup']:.1f}x, gate >= 2x)"
        )
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)

    report = {
        "n": structure.cardinality,
        "smoke": smoke,
        "recovery": recovery,
        "warm_reopen": warm,
        "failures": failures,
    }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"report written to {json_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: WAL recovery restores the pre-crash state and a warm reopen "
        "serves its first cached-plan query >= 2x faster than cold"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="durability harness: recovery time + warm reopen"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload; enforce the recovery and >=2x warm gates",
    )
    parser.add_argument("-n", type=int, default=None, help="structure size")
    parser.add_argument("--json", default=DEFAULT_JSON, help="report path")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (300 if args.smoke else 3000)
    commit_count = 4 if args.smoke else 16
    rounds = 3 if args.smoke else 5
    return run_harness(n, commit_count, rounds, args.smoke, args.json)


if __name__ == "__main__":
    sys.exit(main())
