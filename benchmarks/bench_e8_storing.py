"""E8 — the Storing Theorem in practice (Theorem 2.1, Corollary 2.2).

Claims:

* lookups cost O(depth) = O(k/eps) array accesses — independent of the
  number of stored keys and of ``n`` (group "E8-lookup");
* build cost and storage scale with ``|dom(f)| * n^eps`` — larger ``eps``
  means shallower tries and faster lookups but more slack per node
  (group "E8-build", ``slots_allocated`` in extra_info);
* the hash-table realization (``dict``) of the same interface, for
  reference.
"""

import random

import pytest

from repro.storage.trie import DictBackend, StoringTrie

N = 1 << 14
KEY_COUNT = 5_000
EPSILONS = [0.25, 0.5, 1.0]


def _keys(seed=7):
    rng = random.Random(seed)
    return [
        (rng.randrange(N), rng.randrange(N)) for _ in range(KEY_COUNT)
    ]


@pytest.mark.parametrize("eps", EPSILONS)
@pytest.mark.benchmark(group="E8-build")
def bench_build(benchmark, eps):
    keys = _keys()

    def build():
        trie = StoringTrie(n=N, k=2, eps=eps)
        for index, key in enumerate(keys):
            trie.store(key, index)
        return trie

    trie = benchmark(build)
    benchmark.extra_info["eps"] = eps
    benchmark.extra_info["depth"] = trie.depth
    benchmark.extra_info["slots_allocated"] = trie.slots_allocated


@pytest.mark.parametrize("eps", EPSILONS)
@pytest.mark.benchmark(group="E8-lookup")
def bench_lookup(benchmark, eps):
    keys = _keys()
    trie = StoringTrie(n=N, k=2, eps=eps)
    for index, key in enumerate(keys):
        trie.store(key, index)
    probes = keys[:500] + _keys(seed=8)[:500]  # half hits, half misses

    benchmark(lambda: sum(1 for key in probes if trie.lookup(key) is not None))
    benchmark.extra_info["eps"] = eps
    benchmark.extra_info["depth"] = trie.depth


@pytest.mark.benchmark(group="E8-lookup")
def bench_lookup_dict_reference(benchmark):
    keys = _keys()
    table = DictBackend(k=2)
    for index, key in enumerate(keys):
        table.store(key, index)
    probes = keys[:500] + _keys(seed=8)[:500]

    benchmark(lambda: sum(1 for key in probes if table.lookup(key) is not None))
    benchmark.extra_info["eps"] = "dict"
