"""E13 — transactional batch updates vs one-at-a-time maintenance.

Claim: ``db.apply(changeset)`` amortizes the update bookkeeping — one
structure-lock acquisition, one rolling-fingerprint roll, ONE
:class:`PipelineMaintainer` pass per cached plan, one cache re-key — over
the whole batch, so update throughput (facts/sec) grows with the batch
size while N single ``insert_fact``/``remove_fact`` calls pay the full
pass N times.

Two entry points:

* a standalone harness (``python benchmarks/bench_e13_updates.py``) that
  measures facts/sec for batch-of-N vs N singles across batch sizes and
  **fails (exit 1) on any correctness divergence**;
* ``--smoke`` (the CI gate) runs a tiny workload and enforces the
  equality contracts only:

  1. a batch commit runs **exactly one** maintenance pass per cached
     plan (``updates_applied`` delta == 1) where N singles run N;
  2. ``db.apply`` is answer/count/fingerprint-identical to replaying the
     same ops one-by-one on a fresh ``Database``, and both match the
     naive oracle;
  3. an ``Answers`` handle opened before the commit still streams its
     pinned version byte-identically (snapshot isolation).

Both modes emit ``BENCH_updates.json`` (facts/sec per batch size, the
speedup trajectory) so future PRs can track it.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # allow `python benchmarks/bench_e13_updates.py`
    sys.path.insert(0, REPO_SRC)

from repro.fo.parser import parse  # noqa: E402
from repro.fo.semantics import naive_answers  # noqa: E402
from repro.session import Database  # noqa: E402
from repro.structures.random_gen import random_colored_graph  # noqa: E402

EXAMPLE = "B(x) & R(y) & ~E(x,y)"
QUANTIFIED = "B(x) & exists z. (R(z) & ~E(x,z))"
WARM_QUERIES = (EXAMPLE, QUANTIFIED)

DEFAULT_JSON = "BENCH_updates.json"


def build_workload(n: int, degree: int = 4, seed: int = 42):
    return random_colored_graph(n, max_degree=degree, seed=seed)


def update_stream(structure, count: int, seed: int = 7):
    """A deterministic stream of (insert, relation, elements) edge/color
    flips — balanced inserts and removes over existing and fresh facts."""
    rng = random.Random(seed)
    domain = list(structure.domain)
    existing_edges = sorted(structure.facts("E"))
    ops = []
    for index in range(count):
        roll = rng.random()
        if roll < 0.35 and existing_edges:
            ops.append((False, "E", existing_edges[index % len(existing_edges)]))
        elif roll < 0.7:
            ops.append((True, "E", (rng.choice(domain), rng.choice(domain))))
        else:
            relation = rng.choice(["B", "R"])
            element = rng.choice(domain)
            insert = rng.random() < 0.5
            ops.append((insert, relation, (element,)))
    return ops


def warm(db):
    """Cache (and attach maintainers to) the benchmark plans."""
    for text in WARM_QUERIES:
        db.query(text).count()
    return list(db._maintainers.values())


def run_singles(structure, ops):
    """N legacy one-fact commits; returns (elapsed, db, passes)."""
    with_db = Database(structure.copy())
    maintainers = warm(with_db)
    before = [m.updates_applied for m in maintainers]
    started = time.perf_counter()
    for insert, relation, elements in ops:
        if insert:
            with_db.insert_fact(relation, *elements)
        else:
            with_db.remove_fact(relation, *elements)
    elapsed = time.perf_counter() - started
    passes = [m.updates_applied - b for m, b in zip(maintainers, before)]
    return elapsed, with_db, passes


def run_batch(structure, ops):
    """One transactional commit; returns (elapsed, db, passes, result)."""
    batch_db = Database(structure.copy())
    maintainers = warm(batch_db)
    before = [m.updates_applied for m in maintainers]
    started = time.perf_counter()
    result = batch_db.apply(ops)
    elapsed = time.perf_counter() - started
    passes = [m.updates_applied - b for m, b in zip(maintainers, before)]
    return elapsed, batch_db, passes, result


def count_replay_effective(structure, ops) -> int:
    """How many ops actually change state when replayed one-by-one."""
    sim = structure.copy()
    count = 0
    for insert, relation, elements in ops:
        present = sim.has_fact(relation, *elements)
        if insert and not present:
            sim.add_fact(relation, *elements)
            count += 1
        elif not insert and present:
            sim.remove_fact(relation, *elements)
            count += 1
    return count


def state_of(db):
    per_query = []
    for text in WARM_QUERIES:
        query = db.query(text)
        per_query.append((sorted(query.answers().all()), query.count()))
    return db.structure_fingerprint, per_query


def check_equivalence(batch_db, singles_db) -> list:
    """The replay-identity gate; returns a list of failure strings."""
    failures = []
    batch_fp, batch_state = state_of(batch_db)
    singles_fp, singles_state = state_of(singles_db)
    if batch_fp != singles_fp:
        failures.append("fingerprint diverges between batch and replay")
    for text, batch_part, singles_part in zip(
        WARM_QUERIES, batch_state, singles_state
    ):
        if batch_part != singles_part:
            failures.append(f"[{text}] answers/count diverge from replay")
        formula = parse(text)
        want = sorted(
            naive_answers(
                formula, batch_db.structure, order=sorted(formula.free)
            )
        )
        if batch_part[0] != want or batch_part[1] != len(want):
            failures.append(f"[{text}] batch result diverges from the oracle")
    return failures


def check_snapshot_isolation(structure, ops) -> list:
    """A pre-commit handle must stream its pinned version byte-identically."""
    failures = []
    db = Database(structure.copy())
    warm(db)
    expected = db.query(EXAMPLE).answers().all()
    handle = db.query(EXAMPLE).answers()
    handle.page(0, size=2)  # mid-stream
    result = db.apply(ops)
    try:
        streamed = handle.all()
    except Exception as error:  # StaleResultError would be the regression
        failures.append(f"pinned handle raised {type(error).__name__}: {error}")
        streamed = None
    if streamed is not None and streamed != expected:
        failures.append("pinned handle diverges from pre-commit enumeration")
    if result.changed and not result.forked:
        failures.append("a pinned commit should have forked the head")
    post = sorted(db.query(EXAMPLE).answers().all())
    formula = parse(EXAMPLE)
    want = sorted(
        naive_answers(formula, db.structure, order=sorted(formula.free))
    )
    if post != want:
        failures.append("post-commit head diverges from the oracle")
    handle.cancel()
    db.close()
    return failures


def run_harness(n: int, batch_sizes, smoke: bool, json_path: str) -> int:
    structure = build_workload(n)
    print(
        f"workload: n={structure.cardinality}, degree={structure.degree}; "
        f"plans={list(WARM_QUERIES)}"
    )
    report = {"n": structure.cardinality, "smoke": smoke, "batches": []}
    failures = []

    for batch_size in batch_sizes:
        ops = update_stream(structure, batch_size)
        singles_elapsed, singles_db, singles_passes = run_singles(
            structure, ops
        )
        batch_elapsed, batch_db, batch_passes, result = run_batch(
            structure, ops
        )

        # Gate 1: exactly one maintenance pass per cached plan per commit.
        if result.changed and any(p != 1 for p in batch_passes):
            failures.append(
                f"batch-of-{batch_size}: maintenance passes {batch_passes} "
                "(expected exactly 1 per plan)"
            )
        # Replaying one-by-one pays one pass per *replay-effective* op
        # (cancelling pairs each count — the batch nets them out).
        replay_effective = count_replay_effective(structure, ops)
        if any(p != replay_effective for p in singles_passes):
            failures.append(
                f"batch-of-{batch_size}: singles ran {singles_passes} "
                f"passes per plan, expected {replay_effective}"
            )

        # Gate 2: batch == replay == oracle.
        failures.extend(check_equivalence(batch_db, singles_db))

        singles_rate = (
            batch_size / singles_elapsed if singles_elapsed > 0 else 0.0
        )
        batch_rate = batch_size / batch_elapsed if batch_elapsed > 0 else 0.0
        speedup = (
            singles_elapsed / batch_elapsed if batch_elapsed > 0 else 0.0
        )
        print(
            f"batch of {batch_size:>4}: singles {singles_elapsed:.4f}s "
            f"({singles_rate:,.0f} facts/s)  batch {batch_elapsed:.4f}s "
            f"({batch_rate:,.0f} facts/s)  speedup {speedup:.2f}x  "
            f"effective {result.ops_effective}  passes/plan {batch_passes}"
        )
        report["batches"].append(
            {
                "batch_size": batch_size,
                "ops_effective": result.ops_effective,
                "singles_seconds": singles_elapsed,
                "batch_seconds": batch_elapsed,
                "singles_facts_per_second": singles_rate,
                "batch_facts_per_second": batch_rate,
                "speedup": speedup,
                "maintenance_passes_per_plan": batch_passes,
            }
        )
        singles_db.close()
        batch_db.close()

    # Gate 3: snapshot isolation across a commit.
    failures.extend(
        check_snapshot_isolation(structure, update_stream(structure, 8))
    )

    report["failures"] = failures
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"report written to {json_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: batch commits run one maintenance pass per plan, match "
        "fact-by-fact replay and the oracle, and pinned handles stream "
        "byte-identically"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload; enforce the equality gates only",
    )
    parser.add_argument("-n", type=int, default=None, help="structure size")
    parser.add_argument("--json", default=DEFAULT_JSON, help="report path")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (64 if args.smoke else 2000)
    batch_sizes = (4, 16) if args.smoke else (10, 50, 200)
    return run_harness(n, batch_sizes, args.smoke, args.json)


if __name__ == "__main__":
    sys.exit(main())
