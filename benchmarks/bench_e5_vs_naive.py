"""E5 — constant-delay enumeration vs the naive baselines (Example 2.3).

Claims reproduced:

* For the *positive* query ``B(x) & R(y) & E(x,y)`` (few answers,
  ``Theta(n d)``) the list-join baseline attempts all ``Theta(n^2)``
  blue-red pairs: its time to produce the answers grows quadratically,
  while the pipeline's enumeration grows linearly with the answer count.
  This is the "false hits make the delay arbitrarily large" failure of
  Example 2.3.
* For the *negative* query (the paper's running example) both produce
  ``Theta(n^2)`` answers, but the baseline's *worst-case gap* between
  outputs grows with the blue node's degree, while the skip-based
  enumerator's per-output step count stays constant (see E2).

Shape to read off groups "E5-positive-*": at equal ``n``, ours beats the
baseline, and the baseline's ratio worsens as ``n`` grows.
"""

import pytest

from repro.core.baselines import ListJoinBaseline
from repro.core.enumeration import enumerate_answers
from repro.core.pipeline import Pipeline

from workloads import EXAMPLE_23_POSITIVE, colored_graph, query

SIZES = [256, 512, 1024, 2048]
DEGREE = 4


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E5-positive-pipeline")
def bench_pipeline_positive(benchmark, n):
    db = colored_graph(n, DEGREE)
    pipeline = Pipeline(db, query(EXAMPLE_23_POSITIVE))

    answers = benchmark.pedantic(
        lambda: sum(1 for _ in enumerate_answers(pipeline)), rounds=3, iterations=1
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["answers"] = answers


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E5-positive-listjoin-baseline")
def bench_listjoin_positive(benchmark, n):
    db = colored_graph(n, DEGREE)
    baseline = ListJoinBaseline(query(EXAMPLE_23_POSITIVE), db)

    answers = benchmark.pedantic(
        lambda: sum(1 for _ in baseline.enumerate()), rounds=3, iterations=1
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["answers"] = answers
