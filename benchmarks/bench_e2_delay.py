"""E2 — enumeration delay is constant (Theorem 2.7).

Claim: after preprocessing, the time (and RAM-step count) between
consecutive outputs does not depend on ``n``.

Two entry points:

* pytest-benchmark functions (group "E2-delay"): full enumeration
  times per-answer cost as ``n`` grows 8x, with an exact RAM-step
  bound per output;
* a standalone harness (``python benchmarks/bench_e2_delay.py``) that
  gates the qlang **top-k** fusion: on a >= 10^5-answer workload a
  compiled ``SELECT ... LIMIT 10`` must cost < 5% of full enumeration
  (post-preprocessing) — O(k) delay, independent of the answer total.
  CI runs ``--smoke``; both modes emit ``BENCH_delay.json``.
"""

import argparse
import json
import os
import sys
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # allow `python benchmarks/bench_e2_delay.py`
    sys.path.insert(0, REPO_SRC)

import pytest  # noqa: E402

from repro.core.enumeration import arm_enumerators, enumerate_answers  # noqa: E402
from repro.core.pipeline import Pipeline  # noqa: E402
from repro.session import Database  # noqa: E402
from repro.storage.cost_model import CostMeter  # noqa: E402
from repro.structures.random_gen import random_colored_graph  # noqa: E402

from workloads import (  # noqa: E402
    EXAMPLE_23,
    TRIPLE_QUERY,
    colored_graph,
    consume,
    query,
    three_colored_graph,
)

DEFAULT_JSON = "BENCH_delay.json"
PAIR_QUERY = "B(x) & R(y) & ~E(x,y)"
TOPK_STATEMENT = "SELECT x, y WHERE B(x) & R(y) & ~E(x,y) LIMIT {k}"


def run_topk_harness(
    n: int, k: int, min_answers: int, max_ratio: float, json_path: str
) -> int:
    """Gate: a compiled LIMIT-k touches O(k) work, not O(answers).

    Both timings exclude preprocessing (the paper's split): the full
    enumeration is timed over a prepared Query, and the top-k timing
    starts after ``db.query("SELECT ...")`` returns (parse + compile +
    pipeline build are preprocessing too).
    """
    db = Database(random_colored_graph(n, max_degree=4, seed=7))
    try:
        full_query = db.query(PAIR_QUERY)
        started = time.perf_counter()
        total = sum(1 for _ in full_query.answers())
        full_elapsed = time.perf_counter() - started
        print(
            f"workload: n={n}, degree=4; full enumeration "
            f"{total} answers in {full_elapsed:.3f}s"
        )
        if total < min_answers:
            print(f"FAIL: workload too small ({total} < {min_answers})")
            return 1

        compiled = db.query(TOPK_STATEMENT.format(k=k))
        started = time.perf_counter()
        rows = compiled.all()
        topk_elapsed = time.perf_counter() - started
        ratio = topk_elapsed / full_elapsed if full_elapsed > 0 else 0.0
        print(
            f"top-{k}: {len(rows)} rows in {topk_elapsed * 1000:.2f}ms "
            f"({ratio:.2%} of full enumeration)"
        )

        report = {
            "n": n,
            "k": k,
            "answers": total,
            "full_seconds": full_elapsed,
            "topk_seconds": topk_elapsed,
            "ratio": ratio,
            "max_ratio": max_ratio,
            "statement": TOPK_STATEMENT.format(k=k),
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {json_path}")

        expected = full_query.answers(limit=k).all()
        if rows != expected:
            print("FAIL: top-k rows diverge from the enumeration prefix")
            return 1
        if len(rows) != min(k, total):
            print(f"FAIL: expected {min(k, total)} rows, got {len(rows)}")
            return 1
        if ratio >= max_ratio:
            print(
                f"FAIL: top-{k} cost {ratio:.2%} of full enumeration "
                f"(gate: < {max_ratio:.0%}) — LIMIT did not early-stop"
            )
            return 1
        print(
            f"OK: top-{k} latency is {ratio:.2%} of the full run "
            f"({total} answers) — independent of the answer total"
        )
        return 0
    finally:
        db.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: >= 1e5-answer workload, top-10 must cost < 5% "
        "of full enumeration",
    )
    parser.add_argument("-n", type=int, default=None, help="structure size")
    parser.add_argument("-k", type=int, default=10, help="LIMIT k")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=0.05,
        help="fail if top-k / full-enumeration exceeds this",
    )
    parser.add_argument("--json", default=DEFAULT_JSON, dest="json_path")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (800 if args.smoke else 2000)
    return run_topk_harness(
        n, args.k, 100_000, args.max_ratio, args.json_path
    )

SIZES = [256, 512, 1024, 2048]
DEGREE = 4


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E2-delay-example23")
def bench_per_answer_cost(benchmark, n):
    """Full enumeration; read mean-time-per-answer off ``answers`` in
    extra_info — it stays flat while the answer count grows ~n^2.

    A fixed answer *budget* would mis-measure: each list element's reach
    set is memoized on first touch, and a small budget at large ``n``
    amortizes that warm-up over too few reuses.  Full enumeration is the
    steady-state regime the theorem speaks about.
    """
    db = colored_graph(n, DEGREE)
    pipeline = Pipeline(db, query(EXAMPLE_23))
    arm_enumerators(pipeline)  # arming is preprocessing, not delay

    answers = benchmark.pedantic(
        lambda: sum(1 for _ in enumerate_answers(pipeline)),
        rounds=2,
        iterations=1,
    )
    # RAM-step deltas: the exact claim of Theorem 2.7.
    meter = CostMeter()
    for _ in enumerate_answers(pipeline, meter=meter):
        meter.mark()
        if len(meter.deltas()) >= 20_000:
            break
    benchmark.extra_info["n"] = n
    benchmark.extra_info["answers"] = answers
    benchmark.extra_info["max_step_delta"] = meter.max_delta
    assert meter.max_delta <= 64, "per-output step count must stay bounded"


@pytest.mark.parametrize("n", [256, 512, 1024])
@pytest.mark.benchmark(group="E2-delay-triple")
def bench_triple_query_delay(benchmark, n):
    """3-ary disconnected-triple query: same flat-delay shape."""
    db = three_colored_graph(n, 3)
    pipeline = Pipeline(db, query(TRIPLE_QUERY))
    arm_enumerators(pipeline)

    produced = benchmark.pedantic(
        lambda: consume(enumerate_answers(pipeline), 5_000),
        rounds=3,
        iterations=1,
    )
    assert produced == 5_000
    benchmark.extra_info["n"] = n


if __name__ == "__main__":
    sys.exit(main())
