"""E2 — enumeration delay is constant (Theorem 2.7).

Claim: after preprocessing, the time (and RAM-step count) between
consecutive outputs does not depend on ``n``.

The benchmark times the production of a *fixed number* of answers after
preprocessing (group "E2-delay"): per-answer time should stay flat as
``n`` grows 8x.  The step-count assertion is exact: the maximum RAM-step
delta between outputs must not grow with ``n`` at all.
"""

import pytest

from repro.core.enumeration import arm_enumerators, enumerate_answers
from repro.core.pipeline import Pipeline
from repro.storage.cost_model import CostMeter

from workloads import EXAMPLE_23, TRIPLE_QUERY, colored_graph, consume, query, three_colored_graph

SIZES = [256, 512, 1024, 2048]
DEGREE = 4


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E2-delay-example23")
def bench_per_answer_cost(benchmark, n):
    """Full enumeration; read mean-time-per-answer off ``answers`` in
    extra_info — it stays flat while the answer count grows ~n^2.

    A fixed answer *budget* would mis-measure: each list element's reach
    set is memoized on first touch, and a small budget at large ``n``
    amortizes that warm-up over too few reuses.  Full enumeration is the
    steady-state regime the theorem speaks about.
    """
    db = colored_graph(n, DEGREE)
    pipeline = Pipeline(db, query(EXAMPLE_23))
    arm_enumerators(pipeline)  # arming is preprocessing, not delay

    answers = benchmark.pedantic(
        lambda: sum(1 for _ in enumerate_answers(pipeline)),
        rounds=2,
        iterations=1,
    )
    # RAM-step deltas: the exact claim of Theorem 2.7.
    meter = CostMeter()
    for _ in enumerate_answers(pipeline, meter=meter):
        meter.mark()
        if len(meter.deltas()) >= 20_000:
            break
    benchmark.extra_info["n"] = n
    benchmark.extra_info["answers"] = answers
    benchmark.extra_info["max_step_delta"] = meter.max_delta
    assert meter.max_delta <= 64, "per-output step count must stay bounded"


@pytest.mark.parametrize("n", [256, 512, 1024])
@pytest.mark.benchmark(group="E2-delay-triple")
def bench_triple_query_delay(benchmark, n):
    """3-ary disconnected-triple query: same flat-delay shape."""
    db = three_colored_graph(n, 3)
    pipeline = Pipeline(db, query(TRIPLE_QUERY))
    arm_enumerators(pipeline)

    produced = benchmark.pedantic(
        lambda: consume(enumerate_answers(pipeline), 5_000),
        rounds=3,
        iterations=1,
    )
    assert produced == 5_000
    benchmark.extra_info["n"] = n
