"""E11 — branch-parallel enumeration vs. the serial path.

Claim: the branch decomposition ``(P, t)`` parallelizes enumeration with
a deterministic merge — the parallel engine's output is *byte-identical*
(same tuples, same order) to serial ``enumerate_answers``, and with a
warmed process pool the steady-state wall clock scales with the worker
count on multi-core hardware.

Two entry points:

* pytest-benchmark functions (``pytest benchmarks/bench_e11_parallel.py
  --benchmark-only``), group "E11-parallel": serial vs. thread vs. warm
  process pool on the 5-branch triple workload;
* a standalone harness (``python benchmarks/bench_e11_parallel.py``)
  that measures speedup and **fails (exit 1) on any parallel/serial
  divergence** — CI runs it with ``--smoke`` on a tiny workload.

Methodology note: the serial baseline is timed *after arming* (the
paper's preprocessing/enumeration split), and the process pool is timed
*after warming* (each worker's pipeline rebuild is preprocessing in the
service regime — a long-lived pool answers many queries).  The ≥1.5x
speedup target needs ≥4 physical cores; on fewer cores the harness
reports the measured ratio and only enforces output equality unless
``--require-speedup`` is passed.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if REPO_SRC not in sys.path:  # allow `python benchmarks/bench_e11_parallel.py`
    sys.path.insert(0, REPO_SRC)

from repro.core.pipeline import Pipeline  # noqa: E402
from repro.engine import (  # noqa: E402
    branch_works,
    parallel_enumerate,
    prearm,
    warm_pool,
)
from repro.fo.parser import parse  # noqa: E402
from repro.structures.random_gen import random_colored_graph  # noqa: E402

# The 3-ary disconnected-triple query: 5 partitions, 5 non-empty
# branches on the workload below — enough branch-level parallelism for a
# 4-worker pool.
TRIPLE_QUERY = "B(x) & R(y) & G(z) & ~E(x,y) & ~E(y,z) & ~E(x,z)"


def build_workload(n: int, degree: int = 4, seed: int = 42):
    db = random_colored_graph(n, max_degree=degree, colors=("B", "R", "G"), seed=seed)
    return db, parse(TRIPLE_QUERY)


def output_digest(answers) -> str:
    """Byte-level identity of an ordered answer sequence."""
    hasher = hashlib.sha256()
    for answer in answers:
        hasher.update(repr(answer).encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()


def run_harness(n: int, workers: int, require_speedup: bool) -> int:
    db, query = build_workload(n)
    print(f"workload: n={db.cardinality}, degree={db.degree}, query={TRIPLE_QUERY}")

    started = time.perf_counter()
    pipeline = Pipeline(db, query)
    prep_elapsed = time.perf_counter() - started
    works = branch_works(pipeline)
    print(
        f"preprocessing: {prep_elapsed:.2f}s; branches={pipeline.branch_count} "
        f"(non-empty {sum(1 for work in works if work)})"
    )

    # Serial baseline, steady state: arming excluded (it is preprocessing).
    prearm(pipeline)
    started = time.perf_counter()
    serial = list(parallel_enumerate(pipeline, mode="serial"))
    serial_elapsed = time.perf_counter() - started
    serial_digest = output_digest(serial)
    print(f"serial:  {serial_elapsed:.2f}s  ({len(serial)} answers)")

    failures = 0

    def check(label: str, answers, elapsed: float) -> None:
        nonlocal failures
        digest = output_digest(answers)
        identical = digest == serial_digest
        speedup = serial_elapsed / elapsed if elapsed > 0 else float("inf")
        verdict = "byte-identical" if identical else "DIVERGED"
        print(f"{label}: {elapsed:.2f}s  speedup {speedup:.2f}x  [{verdict}]")
        if not identical:
            failures += 1

    # Thread pool (shares the armed parent pipeline; GIL-bound).
    started = time.perf_counter()
    threaded = list(parallel_enumerate(pipeline, workers=workers, mode="thread"))
    check("thread ", threaded, time.perf_counter() - started)

    # Warmed process pool: the service regime.  Worker rebuild time is
    # reported separately — it is preprocessing, paid once per worker.
    with ProcessPoolExecutor(max_workers=workers) as pool:
        started = time.perf_counter()
        warm_pool(pool, pipeline, workers)
        warm_elapsed = time.perf_counter() - started
        print(f"process pool warm-up ({workers} workers): {warm_elapsed:.2f}s")
        started = time.perf_counter()
        processed = list(
            parallel_enumerate(
                pipeline, workers=workers, mode="process", executor=pool
            )
        )
        process_elapsed = time.perf_counter() - started
        check("process", processed, process_elapsed)

    process_speedup = (
        serial_elapsed / process_elapsed if process_elapsed > 0 else float("inf")
    )
    cores = os.cpu_count() or 1
    if failures:
        print(f"FAIL: {failures} mode(s) diverged from the serial output")
        return 1
    if require_speedup and process_speedup < 1.5:
        print(
            f"FAIL: process-pool speedup {process_speedup:.2f}x < 1.5x "
            f"(machine has {cores} cores; the target needs >= 4)"
        )
        return 1
    print(
        f"OK: all modes byte-identical; process-pool speedup "
        f"{process_speedup:.2f}x on {cores} core(s)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload; only checks parallel/serial answer identity",
    )
    parser.add_argument("-n", type=int, default=None, help="structure size")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help="fail unless the warmed process pool reaches 1.5x",
    )
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (48 if args.smoke else 140)
    return run_harness(n, args.workers, args.require_speedup and not args.smoke)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (the E-series tables)
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def triple_pipeline():
        db, query = build_workload(96)
        pipeline = Pipeline(db, query)
        prearm(pipeline)
        return pipeline

    @pytest.mark.benchmark(group="E11-parallel")
    def bench_serial_enumeration(benchmark, triple_pipeline):
        result = benchmark(
            lambda: sum(1 for _ in parallel_enumerate(triple_pipeline, mode="serial"))
        )
        assert result > 0

    @pytest.mark.benchmark(group="E11-parallel")
    def bench_thread_pool(benchmark, triple_pipeline):
        result = benchmark(
            lambda: sum(
                1
                for _ in parallel_enumerate(
                    triple_pipeline, workers=4, mode="thread"
                )
            )
        )
        assert result > 0

    @pytest.mark.benchmark(group="E11-parallel")
    def bench_process_pool_warm(benchmark, triple_pipeline):
        with ProcessPoolExecutor(max_workers=4) as pool:
            warm_pool(pool, triple_pipeline, 4)
            result = benchmark(
                lambda: sum(
                    1
                    for _ in parallel_enumerate(
                        triple_pipeline, workers=4, mode="process", executor=pool
                    )
                )
            )
        assert result > 0


if __name__ == "__main__":
    sys.exit(main())
