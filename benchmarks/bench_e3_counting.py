"""E3 — counting is pseudo-linear (Theorem 2.5), and parallelizes.

Claim: ``|q(A)|`` is computed in time ``~ n^{1+eps}`` even when the answer
set itself has size ``Theta(n^2)`` — counting never materializes answers.
The per-branch counts are independent integers (the theorem sums them),
so the engine's ``parallel_count`` must return the *exact* serial value
in every execution mode.

Two entry points:

* pytest-benchmark functions (``pytest benchmarks/bench_e3_counting.py
  --benchmark-only``), groups "E3-counting" / "E3-counting-parallel";
* a standalone harness (``python benchmarks/bench_e3_counting.py``)
  that times serial vs. thread vs. process counting over one long-lived
  :class:`~repro.engine.pool.WorkerPool` and **fails (exit 1) on any
  parallel/serial count divergence** — CI runs it with ``--smoke``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:  # allow `python benchmarks/bench_e3_counting.py`
    sys.path.insert(0, REPO_SRC)

from repro.core.counting import count_answers  # noqa: E402
from repro.core.pipeline import Pipeline  # noqa: E402
from repro.engine import WorkerPool, parallel_count  # noqa: E402
from repro.fo.semantics import naive_count  # noqa: E402

from workloads import EXAMPLE_23, colored_graph, query  # noqa: E402

SIZES = [512, 1024, 2048, 4096]
DEGREE = 4


# ----------------------------------------------------------------------
# Standalone harness (the CI equality gate)
# ----------------------------------------------------------------------


def run_harness(n: int, workers: int) -> int:
    db = colored_graph(n, DEGREE)
    print(f"workload: n={db.cardinality}, degree={db.degree}, query={EXAMPLE_23}")

    started = time.perf_counter()
    pipeline = Pipeline(db, query(EXAMPLE_23))
    print(f"preprocessing: {time.perf_counter() - started:.2f}s; "
          f"branches={pipeline.branch_count}")

    started = time.perf_counter()
    serial = count_answers(pipeline)
    serial_elapsed = time.perf_counter() - started
    print(f"serial:  {serial_elapsed:.3f}s  (count {serial:,})")

    failures = 0
    with WorkerPool(workers) as pool:
        for mode in ("thread", "process"):
            started = time.perf_counter()
            got = parallel_count(pipeline, workers=workers, mode=mode, pool=pool)
            elapsed = time.perf_counter() - started
            speedup = serial_elapsed / elapsed if elapsed > 0 else float("inf")
            verdict = "exact" if got == serial else f"DIVERGED (got {got:,})"
            print(f"{mode:7s}: {elapsed:.3f}s  speedup {speedup:.2f}x  [{verdict}]")
            if got != serial:
                failures += 1
    if failures:
        print(f"FAIL: {failures} mode(s) diverged from the serial count")
        return 1
    print(f"OK: all modes returned the exact serial count {serial:,}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload; checks parallel/serial count equality only",
    )
    parser.add_argument("-n", type=int, default=None, help="structure size")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (96 if args.smoke else 2048)
    return run_harness(n, args.workers)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (the E-series tables)
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone invocation
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.benchmark(group="E3-counting")
    def bench_count(benchmark, n):
        db = colored_graph(n, DEGREE)
        pipeline = Pipeline(db, query(EXAMPLE_23))

        count = benchmark.pedantic(
            lambda: count_answers(pipeline), rounds=3, iterations=2
        )
        benchmark.extra_info["n"] = n
        benchmark.extra_info["count"] = count
        # Quadratically many answers, counted without enumerating them.
        assert count > n

    @pytest.mark.parametrize("mode", ["thread", "process"])
    @pytest.mark.benchmark(group="E3-counting-parallel")
    def bench_parallel_count(benchmark, mode):
        """Parallel per-branch counting over a warm long-lived pool."""
        n = SIZES[-1]
        db = colored_graph(n, DEGREE)
        pipeline = Pipeline(db, query(EXAMPLE_23))
        serial = count_answers(pipeline)
        with WorkerPool(4) as pool:
            # Warm once (process workers rebuild the pipeline on first use).
            parallel_count(pipeline, workers=4, mode=mode, pool=pool)
            count = benchmark.pedantic(
                lambda: parallel_count(pipeline, workers=4, mode=mode, pool=pool),
                rounds=3,
                iterations=1,
            )
        benchmark.extra_info["n"] = n
        benchmark.extra_info["mode"] = mode
        assert count == serial, "parallel count diverged from serial"

    @pytest.mark.parametrize("n", [60, 120])
    @pytest.mark.benchmark(group="E3-counting-vs-naive")
    def bench_naive_count_for_reference(benchmark, n):
        """The O(n^2) naive count at small n — the quadratic strawman."""
        db = colored_graph(n, DEGREE)
        formula = query(EXAMPLE_23)
        count = benchmark.pedantic(
            lambda: naive_count(formula, db), rounds=2, iterations=1
        )
        benchmark.extra_info["n"] = n
        # Cross-check correctness while we are here.
        pipeline = Pipeline(db, formula)
        assert count_answers(pipeline) == count


if __name__ == "__main__":
    sys.exit(main())
