"""E3 — counting is pseudo-linear (Theorem 2.5).

Claim: ``|q(A)|`` is computed in time ``~ n^{1+eps}`` even when the answer
set itself has size ``Theta(n^2)`` — counting never materializes answers.

Shape to read off group "E3-counting": time roughly doubles with ``n``
while the counted value roughly *quadruples*.
"""

import pytest

from repro.core.counting import count_answers
from repro.core.pipeline import Pipeline
from repro.fo.semantics import naive_count

from workloads import EXAMPLE_23, colored_graph, query

SIZES = [512, 1024, 2048, 4096]
DEGREE = 4


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="E3-counting")
def bench_count(benchmark, n):
    db = colored_graph(n, DEGREE)
    pipeline = Pipeline(db, query(EXAMPLE_23))

    count = benchmark.pedantic(lambda: count_answers(pipeline), rounds=3, iterations=2)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["count"] = count
    # Quadratically many answers, counted without enumerating them.
    assert count > n


@pytest.mark.parametrize("n", [60, 120])
@pytest.mark.benchmark(group="E3-counting-vs-naive")
def bench_naive_count_for_reference(benchmark, n):
    """The O(n^2) naive count at small n — the quadratic strawman."""
    db = colored_graph(n, DEGREE)
    formula = query(EXAMPLE_23)
    count = benchmark.pedantic(
        lambda: naive_count(formula, db), rounds=2, iterations=1
    )
    benchmark.extra_info["n"] = n
    # Cross-check correctness while we are here.
    pipeline = Pipeline(db, formula)
    assert count_answers(pipeline) == count
