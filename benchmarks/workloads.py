"""Shared benchmark workloads.

Structures are cached per parameter set so pytest-benchmark's repeated
calls do not regenerate them; every generator is seeded, so runs are
reproducible.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import islice
from typing import Iterable, Iterator, Tuple

from repro.fo.parser import parse
from repro.structures.random_gen import (
    degree_log,
    random_colored_graph,
)
from repro.structures.structure import Structure

# The paper's running example (Example 2.3): blue-red pairs without an edge.
EXAMPLE_23 = "B(x) & R(y) & ~E(x,y)"
# Its positive twin: blue-red pairs *with* an edge (a connected conjunction).
EXAMPLE_23_POSITIVE = "B(x) & R(y) & E(x,y)"
# A 3-ary disconnected-triple query.
TRIPLE_QUERY = "B(x) & R(y) & G(z) & ~E(x,y) & ~E(y,z) & ~E(x,z)"
# A quantified query: nodes with a red non-neighbor witness.
QUANTIFIED_QUERY = "B(x) & exists z. (R(z) & ~E(x,z))"
# Sentences for model checking (E9).
SENTENCE_FAR_PAIR = "exists x. exists y. dist(x,y) > 3 & B(x) & B(y)"
SENTENCE_GUARDED = "exists x. forall y. E(x,y) -> R(y)"


@lru_cache(maxsize=None)
def colored_graph(n: int, degree: int, seed: int = 42) -> Structure:
    return random_colored_graph(n, max_degree=degree, seed=seed)


@lru_cache(maxsize=None)
def three_colored_graph(n: int, degree: int, seed: int = 42) -> Structure:
    return random_colored_graph(
        n, max_degree=degree, colors=("B", "R", "G"), seed=seed
    )


@lru_cache(maxsize=None)
def log_degree_graph(n: int, seed: int = 42) -> Structure:
    return random_colored_graph(n, max_degree=degree_log()(n), seed=seed)


@lru_cache(maxsize=None)
def query(text: str):
    return parse(text)


def consume(iterator: Iterator, limit: int) -> int:
    """Drain up to ``limit`` items; return how many were produced."""
    count = 0
    for _ in islice(iterator, limit):
        count += 1
    return count


def fitted_exponent(xs: Iterable[float], ys: Iterable[float]) -> float:
    """Least-squares slope of log(y) against log(x): the scaling exponent."""
    import math

    points = [
        (math.log(float(x_value)), math.log(float(y_value)))
        for x_value, y_value in zip(xs, ys)
        if x_value > 0 and y_value > 0
    ]
    n = len(points)
    if n < 2:
        return float("nan")
    mean_x = sum(p[0] for p in points) / n
    mean_y = sum(p[1] for p in points) / n
    numerator = sum((p[0] - mean_x) * (p[1] - mean_y) for p in points)
    denominator = sum((p[0] - mean_x) ** 2 for p in points)
    return numerator / denominator if denominator else float("nan")
