"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one experiment from DESIGN.md's index (E1..E9);
pytest-benchmark's group tables are the "figures": within a group, compare
rows across the ``n`` / ``d`` / mode parameter to read off the scaling
shape.  ``benchmarks/run_experiments.py`` produces the EXPERIMENTS.md
summary tables standalone.
"""

import gc

import pytest


@pytest.fixture(autouse=True)
def _disable_gc():
    """Disable the cycle collector during measurements: the paper's delay
    bounds are RAM-model statements and CPython GC pauses are noise."""
    was_enabled = gc.isenabled()
    gc.disable()
    yield
    if was_enabled:
        gc.enable()
